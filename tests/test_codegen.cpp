// C backend tests: the emitted source must compile with the system C
// compiler and the compiled kernels (primal, tangent, adjoints) must agree
// with the interpreter on every benchmark kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "codegen/cgen.h"
#include "codegen/native.h"
#include "helpers.h"

namespace formad::testing {
namespace {

using codegen::CgenOptions;
using codegen::NativeKernel;
using driver::AdjointMode;
using exec::ArrayValue;
using exec::Inputs;

TEST(Cgen, SourceShape) {
  auto k = parser::parseKernel(R"(
kernel axpy(n: int in, a: real in, x: real[] in, y: real[] inout) {
  parallel for i = 0 : n - 1 {
    y[i] = y[i] + a * x[i];
  }
}
)");
  std::string src = codegen::emitC(*k);
  EXPECT_NE(src.find("void axpy(long long n, double a, double* x, double* y"),
            std::string::npos)
      << src;
  EXPECT_NE(src.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(src.find("void axpy_entry(void** argv)"), std::string::npos);

  CgenOptions serial;
  serial.openmp = false;
  EXPECT_EQ(codegen::emitC(*k, serial).find("#pragma omp"),
            std::string::npos);
}

TEST(Cgen, AtomicGuardBecomesPragma) {
  Harness h = indirectHarness(32, 1);
  auto k = h.parse();
  auto dr = driver::differentiate(*k, h.spec.independents, h.spec.dependents,
                                  AdjointMode::Atomic);
  std::string src = codegen::emitC(*dr.adjoint);
  EXPECT_NE(src.find("#pragma omp atomic"), std::string::npos) << src;
}

TEST(Cgen, ReductionGuardRejected) {
  Harness h = indirectHarness(32, 1);
  auto k = h.parse();
  auto dr = driver::differentiate(*k, h.spec.independents, h.spec.dependents,
                                  AdjointMode::Reduction);
  EXPECT_THROW((void)codegen::emitC(*dr.adjoint), Error);
}

/// Compares native vs interpreted execution of a kernel on the harness's
/// inputs (plus zero/seeded adjoint arrays when `adjointParams` given).
void expectNativeMatchesInterpreter(
    const ir::Kernel& kernel, const Harness& h,
    const std::map<std::string, std::string>* adjointParams) {
  auto bindAll = [&](Inputs& io) {
    h.bind(io);
    if (adjointParams != nullptr) {
      for (const auto& [p, pb] : *adjointParams) {
        const auto& a = io.array(p);
        std::vector<long long> dims;
        for (int k = 0; k < a.rank(); ++k) dims.push_back(a.dim(k));
        auto& b = io.bindArray(pb, ArrayValue::reals(dims));
        b.fill(0.5);
      }
    }
  };

  Inputs interpIo;
  bindAll(interpIo);
  exec::Executor ex(kernel);
  (void)ex.run(interpIo);

  Inputs nativeIo;
  bindAll(nativeIo);
  NativeKernel native(kernel);
  native.run(nativeIo);

  for (const auto& p : kernel.params) {
    if (!p.type.isArray() || !p.type.isReal()) continue;
    const auto& a = interpIo.array(p.name).realData();
    const auto& b = nativeIo.array(p.name).realData();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
      EXPECT_NEAR(a[i], b[i], 1e-12 * std::max(1.0, std::fabs(a[i])))
          << kernel.name << " " << p.name << "[" << i << "]";
  }
}

struct NativeCase {
  const char* name;
  Harness (*make)();
};

Harness mkStencil() { return stencilHarness(1, 500, 11); }
Harness mkStencilLarge() { return stencilHarness(8, 400, 13); }
Harness mkIndirect() { return indirectHarness(128, 17); }
Harness mkGreenGauss() { return greenGaussHarness(800, 19); }
Harness mkGfmc() { return gfmcHarness(false, 23); }
Harness mkGfmcFused() { return gfmcHarness(true, 29); }

class NativeVsInterp : public ::testing::TestWithParam<NativeCase> {};

TEST_P(NativeVsInterp, PrimalMatches) {
  Harness h = GetParam().make();
  auto k = h.parse();
  expectNativeMatchesInterpreter(*k, h, nullptr);
}

TEST_P(NativeVsInterp, FormadAdjointMatches) {
  Harness h = GetParam().make();
  auto k = h.parse();
  auto dr = driver::differentiate(*k, h.spec.independents, h.spec.dependents,
                                  AdjointMode::FormAD);
  expectNativeMatchesInterpreter(*dr.adjoint, h, &dr.adjointParams);
}

TEST_P(NativeVsInterp, AtomicAdjointMatches) {
  Harness h = GetParam().make();
  auto k = h.parse();
  auto dr = driver::differentiate(*k, h.spec.independents, h.spec.dependents,
                                  AdjointMode::Atomic);
  expectNativeMatchesInterpreter(*dr.adjoint, h, &dr.adjointParams);
}

TEST_P(NativeVsInterp, TangentMatches) {
  Harness h = GetParam().make();
  auto k = h.parse();
  ad::TangentOptions topts;
  topts.independents = h.spec.independents;
  topts.dependents = h.spec.dependents;
  auto tr = ad::buildTangent(*k, topts);
  std::map<std::string, std::string> seeds(tr.tangentParams.begin(),
                                           tr.tangentParams.end());
  expectNativeMatchesInterpreter(*tr.tangent, h, &seeds);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, NativeVsInterp,
    ::testing::Values(NativeCase{"stencil1", mkStencil},
                      NativeCase{"stencil8", mkStencilLarge},
                      NativeCase{"indirect", mkIndirect},
                      NativeCase{"greengauss", mkGreenGauss},
                      NativeCase{"gfmc", mkGfmc},
                      NativeCase{"gfmc_fused", mkGfmcFused}),
    [](const ::testing::TestParamInfo<NativeCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace formad::testing
