// The serving layer (src/server/): protocol round-trips for every request
// type, structured errors for every malformed input (never a crash), a
// byte-split fuzz loop over the framing parser, concurrency determinism
// (byte-identical reports at any session count, arrival order, and store
// temperature), and governance under load (a starved or fault-injected
// request degrades only its own response — the shared store never serves
// its poison to concurrent clean requests).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/mutants.h"
#include "kernels/stencil.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"
#include "support/diagnostics.h"
#include "support/percentile.h"

namespace {

using namespace formad;
using server::AnalysisServer;
using server::JsonValue;
using server::LineFramer;
using server::ServeOptions;
namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag)
      : path(fs::temp_directory_path() /
             (std::string("formad_server_") + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

JsonValue parse(const std::string& line) {
  return server::parseJson(line);
}

/// Response accessors; each asserts the member exists with the right kind.
bool okOf(const JsonValue& r) {
  const JsonValue* ok = r.find("ok");
  EXPECT_NE(ok, nullptr);
  return ok != nullptr && ok->kind() == JsonValue::Kind::Bool && ok->asBool();
}

std::string errorCodeOf(const JsonValue& r) {
  const JsonValue* err = r.find("error");
  if (err == nullptr || err->kind() != JsonValue::Kind::Object) return "";
  const JsonValue* code = err->find("code");
  return code != nullptr && code->kind() == JsonValue::Kind::String
             ? code->asString()
             : "";
}

std::string stringField(const JsonValue& r, const std::string& key) {
  const JsonValue* v = r.find(key);
  EXPECT_NE(v, nullptr) << "missing '" << key << "'";
  return v != nullptr && v->kind() == JsonValue::Kind::String ? v->asString()
                                                              : "";
}

/// The deterministic part of a response: everything except wall-clock and
/// store-temperature observables. Byte-compared across configurations.
std::string deterministicPart(const std::string& line) {
  JsonValue r = parse(line);
  JsonValue out = JsonValue::object();
  for (const auto& [key, val] : r.members())
    if (key != "wall_ms" && key != "cache") out.set(key, val);
  return out.dump();
}

std::string analyzeFrame(const kernels::KernelSpec& spec,
                         const std::string& optionsJson = "") {
  JsonValue req = JsonValue::object();
  req.set("id", JsonValue::str(spec.name));
  req.set("op", JsonValue::str("analyze"));
  req.set("source", JsonValue::str(spec.source));
  JsonValue ind = JsonValue::array();
  for (const auto& v : spec.independents) ind.push(JsonValue::str(v));
  req.set("independents", std::move(ind));
  JsonValue dep = JsonValue::array();
  for (const auto& v : spec.dependents) dep.push(JsonValue::str(v));
  req.set("dependents", std::move(dep));
  if (!optionsJson.empty()) req.set("options", parse(optionsJson));
  return req.dump();
}

std::string racecheckFrame(const kernels::KernelSpec& spec) {
  JsonValue req = JsonValue::object();
  req.set("id", JsonValue::str(spec.name));
  req.set("op", JsonValue::str("racecheck"));
  req.set("source", JsonValue::str(spec.source));
  return req.dump();
}

// ---------------------------------------------------------------------------
// Protocol round-trips.

TEST(ServerProtocol, AnalyzeRoundTrip) {
  AnalysisServer daemon(ServeOptions{});
  const kernels::KernelSpec spec = kernels::stencilSpec(1);
  JsonValue r = parse(daemon.process(analyzeFrame(spec)));
  EXPECT_TRUE(okOf(r));
  EXPECT_EQ(stringField(r, "op"), "analyze");
  EXPECT_EQ(stringField(r, "id"), "stencil1");
  EXPECT_EQ(stringField(r, "kernel"), "stencil1");
  const std::string report = stringField(r, "report");
  EXPECT_NE(report.find("SAFE"), std::string::npos);
  EXPECT_NE(report.find("decision tiers"), std::string::npos);
  ASSERT_NE(r.find("tiers"), nullptr);
  ASSERT_NE(r.find("governance"), nullptr);
  ASSERT_NE(r.find("cache"), nullptr);
  ASSERT_NE(r.find("wall_ms"), nullptr);
}

TEST(ServerProtocol, RacecheckRoundTripRacyAndClean) {
  AnalysisServer daemon(ServeOptions{});
  JsonValue racy = parse(daemon.process(racecheckFrame(
      kernels::stencilRacySpec())));
  EXPECT_TRUE(okOf(racy));
  EXPECT_EQ(stringField(racy, "verdict"), "RACY");
  JsonValue clean =
      parse(daemon.process(racecheckFrame(kernels::stencilSpec(1))));
  EXPECT_TRUE(okOf(clean));
  EXPECT_EQ(stringField(clean, "verdict"), "race-free");
}

TEST(ServerProtocol, LintRoundTrip) {
  AnalysisServer daemon(ServeOptions{});
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("lint"));
  req.set("source", JsonValue::str(kernels::greenGaussSpec().source));
  JsonValue r = parse(daemon.process(req.dump()));
  EXPECT_TRUE(okOf(r));
  const JsonValue* clean = r.find("clean");
  ASSERT_NE(clean, nullptr);
  EXPECT_TRUE(clean->asBool());  // the paper kernels lint clean
  // Absent id echoes back as null.
  const JsonValue* id = r.find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->kind(), JsonValue::Kind::Null);
}

TEST(ServerProtocol, StatsCountsRequests) {
  AnalysisServer daemon(ServeOptions{});
  (void)daemon.process(analyzeFrame(kernels::stencilSpec(1)));
  (void)daemon.process(R"({"op":"nonsense"})");
  JsonValue r = parse(daemon.process(R"({"id":7,"op":"stats"})"));
  EXPECT_TRUE(okOf(r));
  const JsonValue* id = r.find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->asInt(), 7);
  const JsonValue* reqs = r.find("requests");
  ASSERT_NE(reqs, nullptr);
  EXPECT_EQ(reqs->find("analyze")->asInt(), 1);
  EXPECT_EQ(reqs->find("errors")->asInt(), 1);
  const JsonValue* store = r.find("store");
  ASSERT_NE(store, nullptr);
  EXPECT_GT(store->find("task_stores")->asInt(), 0);
}

TEST(ServerProtocol, ShutdownStopsNewRequests) {
  AnalysisServer daemon(ServeOptions{});
  JsonValue r = parse(daemon.process(R"({"id":1,"op":"shutdown"})"));
  EXPECT_TRUE(okOf(r));
  EXPECT_TRUE(daemon.shutdownRequested());
  JsonValue after = parse(daemon.process(R"({"id":2,"op":"stats"})"));
  EXPECT_FALSE(okOf(after));
  EXPECT_EQ(errorCodeOf(after), "shutting_down");
}

// ---------------------------------------------------------------------------
// Structured errors: every malformed input gets a typed error response.

TEST(ServerProtocol, MalformedInputsGetStructuredErrors) {
  AnalysisServer daemon(ServeOptions{});
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"{not json", "parse_error"},
      {"42", "bad_request"},                        // not an object
      {R"({"id":1})", "bad_request"},               // missing op
      {R"({"op":"noop"})", "bad_request"},          // unknown op
      {R"({"op":"stats","shards":4})", "bad_request"},  // unknown field
      {R"({"op":"stats","options":{"turbo":true}})",
       "bad_request"},                              // unknown options field
      {R"({"op":"stats","options":{"threads":"four"}})",
       "bad_request"},                              // wrong option type
      {R"({"op":"stats","options":{"solver_budget":-2}})",
       "bad_request"},                              // out of range
      {R"({"id":true,"op":"stats"})", "bad_request"},   // bad id kind
      {R"({"op":"analyze","source":"kernel k() {}"})",
       "bad_request"},                              // missing indep/dep
      {R"({"op":"stats","source":"kernel k() {}"})",
       "bad_request"},                              // source on a no-source op
      {R"({"op":"lint","source":""})", "bad_request"},  // empty source
      {R"({"op":"lint","source":"kernel k("})",
       "kernel_error"},                             // DSL parse failure
  };
  for (const auto& [frame, code] : cases) {
    JsonValue r = parse(daemon.process(frame));
    EXPECT_FALSE(okOf(r)) << frame;
    EXPECT_EQ(errorCodeOf(r), code) << frame;
  }
  // The daemon survived all of it.
  EXPECT_TRUE(okOf(parse(daemon.process(R"({"op":"stats"})"))));
}

TEST(ServerProtocol, BadRequestStillEchoesTheId) {
  AnalysisServer daemon(ServeOptions{});
  JsonValue r = parse(daemon.process(R"({"id":"req-9","op":"noop"})"));
  EXPECT_FALSE(okOf(r));
  EXPECT_EQ(stringField(r, "id"), "req-9");
}

TEST(ServerProtocol, UnknownHeadKernelIsAKernelError) {
  AnalysisServer daemon(ServeOptions{});
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("lint"));
  req.set("source", JsonValue::str(kernels::stencilSpec(1).source));
  req.set("head", JsonValue::str("nope"));
  JsonValue r = parse(daemon.process(req.dump()));
  EXPECT_FALSE(okOf(r));
  EXPECT_EQ(errorCodeOf(r), "kernel_error");
}

TEST(ServerProtocol, OversizedFrameIsRejectedNotBuffered) {
  ServeOptions opts;
  opts.maxRequestBytes = 256;
  AnalysisServer daemon(opts);
  std::istringstream in(std::string(10000, 'x') + "\n" +
                        R"({"id":1,"op":"stats"})" + "\n" +
                        R"({"op":"shutdown"})" + "\n");
  std::ostringstream out;
  server::serveStdio(daemon, in, out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(errorCodeOf(parse(line)), "oversized");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(okOf(parse(line)));  // the next request still works
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(okOf(parse(line)));  // shutdown acknowledged
}

// ---------------------------------------------------------------------------
// Framing fuzz: random byte splits must reproduce unsplit framing.

TEST(ServerFraming, RandomChunkSplitsReproduceUnsplitFrames) {
  const std::string stream =
      "{\"op\":\"stats\"}\n"
      "\n"                              // blank line: dropped
      "{\"id\":1,\"op\":\"lint\"}\r\n"  // CRLF client
      + std::string(300, 'y') + "\n"    // oversized at limit 128
      + "{\"id\":2}\n"
        "tail-without-newline";
  auto frameAll = [](LineFramer& framer, const std::string& bytes,
                     const std::vector<size_t>& cuts) {
    std::vector<LineFramer::Frame> out;
    size_t pos = 0;
    for (size_t cut : cuts) {
      framer.feed(bytes.data() + pos, cut - pos, out);
      pos = cut;
    }
    framer.feed(bytes.data() + pos, bytes.size() - pos, out);
    framer.finish(out);
    return out;
  };

  LineFramer whole(128);
  const std::vector<LineFramer::Frame> reference =
      frameAll(whole, stream, {});
  ASSERT_EQ(reference.size(), 5u);
  EXPECT_TRUE(reference[2].oversized);

  std::mt19937 rng(20260808);
  for (int round = 0; round < 200; ++round) {
    std::vector<size_t> cuts;
    const size_t nCuts = rng() % 12;
    for (size_t c = 0; c < nCuts; ++c)
      cuts.push_back(rng() % (stream.size() + 1));
    std::sort(cuts.begin(), cuts.end());
    LineFramer framer(128);
    const std::vector<LineFramer::Frame> got =
        frameAll(framer, stream, cuts);
    ASSERT_EQ(got.size(), reference.size()) << "round " << round;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].text, reference[i].text) << "round " << round;
      EXPECT_EQ(got[i].oversized, reference[i].oversized)
          << "round " << round;
    }
  }
}

TEST(ServerFraming, SplitRequestsYieldIdenticalResponses) {
  AnalysisServer daemon(ServeOptions{});
  const std::string frame = analyzeFrame(kernels::stencilSpec(1));
  const std::string reference =
      deterministicPart(daemon.process(frame));

  // The same request arriving in arbitrary chunks through the framer must
  // produce the same response.
  std::mt19937 rng(7);
  for (int round = 0; round < 20; ++round) {
    LineFramer framer(1 << 20);
    std::vector<LineFramer::Frame> frames;
    const std::string bytes = frame + "\n";
    size_t pos = 0;
    while (pos < bytes.size()) {
      const size_t n = 1 + rng() % 40;
      const size_t len = std::min(n, bytes.size() - pos);
      framer.feed(bytes.data() + pos, len, frames);
      pos += len;
    }
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(deterministicPart(daemon.process(frames[0].text)), reference);
  }
}

// ---------------------------------------------------------------------------
// Concurrency determinism: byte-identical reports at any session count,
// arrival order, and store temperature.

TEST(ServerConcurrency, ReportsAreByteIdenticalAcrossSessionsAndOrder) {
  // The mixed workload every client replays.
  std::vector<std::string> mix = {
      analyzeFrame(kernels::stencilSpec(1)),
      analyzeFrame(kernels::stencilSpec(2)),
      analyzeFrame(kernels::gfmcSplitSpec()),
      analyzeFrame(kernels::greenGaussSpec()),
      racecheckFrame(kernels::stencilRacySpec()),
      racecheckFrame(kernels::gatherRacySpec()),
      racecheckFrame(kernels::stencilSpec(1)),
  };

  // Reference: a serial 1-session daemon, one request at a time.
  std::map<std::string, std::string> reference;
  {
    ServeOptions opts;
    opts.sessions = 1;
    AnalysisServer daemon(opts);
    for (const auto& frame : mix)
      reference[frame] = deterministicPart(daemon.process(frame));
  }

  TempDir dir("determinism");
  for (int sessions : {1, 2, 4, 8}) {
    // Two passes over one shared cache directory: the second runs against
    // a warm store (disk + memory layer), and must still be
    // byte-identical.
    ServeOptions opts;
    opts.sessions = sessions;
    opts.cacheDir = dir.path.string();
    AnalysisServer daemon(opts);
    for (int pass = 0; pass < 2; ++pass) {
      const int kClients = 4;
      std::vector<std::vector<std::pair<std::string, std::string>>> got(
          kClients);
      std::vector<std::thread> clients;
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          // Each client its own arrival order.
          std::vector<std::string> order = mix;
          std::mt19937 rng(static_cast<unsigned>(1000 * pass + c));
          std::shuffle(order.begin(), order.end(), rng);
          for (const auto& frame : order)
            got[static_cast<size_t>(c)].emplace_back(
                frame, daemon.process(frame));
        });
      }
      for (auto& t : clients) t.join();
      for (const auto& client : got)
        for (const auto& [frame, line] : client)
          EXPECT_EQ(deterministicPart(line), reference[frame])
              << "sessions=" << sessions << " pass=" << pass;
    }
  }
}

// ---------------------------------------------------------------------------
// Governance under load: a starved or faulted request degrades only its
// own response; the shared store never serves its poison.

TEST(ServerGovernance, StarvedRequestDegradesOnlyItself) {
  const kernels::KernelSpec spec = kernels::stencilSpec(2);
  // Solver work is real with the fast paths off; budget 1 starves it.
  const std::string starved =
      analyzeFrame(spec, R"({"fastpath":"off","solver_budget":1})");
  const std::string unlimited = analyzeFrame(spec, R"({"fastpath":"off"})");

  std::string reference;
  {
    ServeOptions opts;
    opts.sessions = 1;
    AnalysisServer daemon(opts);
    reference = deterministicPart(daemon.process(unlimited));
  }

  TempDir dir("governance");
  ServeOptions opts;
  opts.sessions = 2;
  opts.cacheDir = dir.path.string();
  AnalysisServer daemon(opts);

  JsonValue starvedResp = parse(daemon.process(starved));
  EXPECT_TRUE(okOf(starvedResp));
  const JsonValue* gov = starvedResp.find("governance");
  ASSERT_NE(gov, nullptr);
  EXPECT_GT(gov->find("budget_exhausted")->asInt(), 0);
  EXPECT_GT(gov->find("degraded_pairs")->asInt(), 0);

  // Concurrent unlimited requests through the same store stay complete:
  // the starved run's exhausted verdicts must not satisfy them.
  std::vector<std::thread> clients;
  std::vector<std::string> lines(4);
  for (size_t c = 0; c < lines.size(); ++c)
    clients.emplace_back(
        [&, c] { lines[c] = daemon.process(unlimited); });
  for (auto& t : clients) t.join();
  for (const auto& line : lines) {
    EXPECT_EQ(deterministicPart(line), reference);
    JsonValue r = parse(line);
    const JsonValue* g = r.find("governance");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->find("budget_exhausted")->asInt(), 0);
    EXPECT_EQ(g->find("degraded_pairs")->asInt(), 0);
  }
}

TEST(ServerGovernance, InjectedFaultsStayPerRequest) {
  const kernels::KernelSpec spec = kernels::stencilSpec(2);
  const std::string clean = analyzeFrame(spec, R"({"fastpath":"off"})");
  const std::string unknownFault =
      analyzeFrame(spec, R"({"fastpath":"off","fault_unknown_at":1})");
  const std::string throwFault =
      analyzeFrame(spec, R"({"fastpath":"off","fault_throw_at":1})");

  std::string reference;
  {
    ServeOptions opts;
    opts.sessions = 1;
    AnalysisServer daemon(opts);
    reference = deterministicPart(daemon.process(clean));
  }

  TempDir dir("faults");
  ServeOptions opts;
  opts.sessions = 2;
  opts.cacheDir = dir.path.string();
  AnalysisServer daemon(opts);

  // The injected-Unknown request answers ok but degraded (the forced
  // Unknown surfaces like a budget-exhausted check)...
  JsonValue degraded = parse(daemon.process(unknownFault));
  EXPECT_TRUE(okOf(degraded));
  EXPECT_GT(
      degraded.find("governance")->find("budget_exhausted")->asInt(), 0);
  // ...and the injected-throw request fails alone, with a typed error.
  JsonValue thrown = parse(daemon.process(throwFault));
  EXPECT_FALSE(okOf(thrown));
  EXPECT_EQ(errorCodeOf(thrown), "kernel_error");

  // Concurrent clean requests (sharing the store the faulted requests
  // were barred from) still match the fault-free reference byte for byte.
  std::vector<std::thread> clients;
  std::vector<std::string> lines(4);
  for (size_t c = 0; c < lines.size(); ++c)
    clients.emplace_back([&, c] {
      lines[c] = daemon.process(c % 2 == 0 ? clean : unknownFault);
    });
  for (auto& t : clients) t.join();
  for (size_t c = 0; c < lines.size(); ++c) {
    if (c % 2 == 0) {
      EXPECT_EQ(deterministicPart(lines[c]), reference);
    } else {
      EXPECT_TRUE(okOf(parse(lines[c])));
    }
  }

  // After all the faults, a fresh daemon on the same directory still
  // serves the clean verdicts (nothing poisoned the persisted records).
  {
    ServeOptions fresh;
    fresh.sessions = 1;
    fresh.cacheDir = dir.path.string();
    AnalysisServer daemon2(fresh);
    EXPECT_EQ(deterministicPart(daemon2.process(clean)), reference);
  }
}

// ---------------------------------------------------------------------------
// Single-flight under contention: 8 sessions racing one identical cold
// kernel perform exactly one cold run of fresh solver work between them.

long long cacheField(const JsonValue& r, const char* key) {
  const JsonValue* cache = r.find("cache");
  EXPECT_NE(cache, nullptr);
  if (cache == nullptr) return -1;
  const JsonValue* v = cache->find(key);
  EXPECT_NE(v, nullptr) << "missing cache." << key;
  return v != nullptr ? v->asInt() : -1;
}

TEST(ServerStress, EightRacingSessionsDoOneColdRunOfFreshWork) {
  const kernels::KernelSpec spec = kernels::stencilSpec(4);
  const std::string frame = analyzeFrame(spec);

  // Reference: a serial single-session daemon, cold store.
  std::string refReport;
  long long refFresh = 0, refTier2 = 0, refTaskTotal = 0, refPersisted = 0;
  {
    ServeOptions opts;
    opts.sessions = 1;
    AnalysisServer daemon(opts);
    const std::string line = daemon.process(frame);
    JsonValue r = parse(line);
    ASSERT_TRUE(okOf(r));
    refReport = deterministicPart(line);
    refFresh = cacheField(r, "fresh_solver_checks");
    refTier2 = cacheField(r, "fresh_tier2_solves");
    refPersisted = cacheField(r, "tasks_persisted");
    refTaskTotal = refPersisted + cacheField(r, "tasks_spliced") +
                   cacheField(r, "tasks_joined");
    ASSERT_GT(refFresh, 0);
  }

  ServeOptions opts;
  opts.sessions = 8;
  AnalysisServer daemon(opts);
  constexpr int kClients = 8;
  std::vector<std::string> lines(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back(
        [&daemon, &lines, &frame, c] { lines[c] = daemon.process(frame); });
  for (auto& t : clients) t.join();

  long long fresh = 0, tier2 = 0, persisted = 0;
  for (const auto& line : lines) {
    JsonValue r = parse(line);
    ASSERT_TRUE(okOf(r));
    // Byte-identical reports no matter who won which claim.
    EXPECT_EQ(deterministicPart(line), refReport);
    fresh += cacheField(r, "fresh_solver_checks");
    tier2 += cacheField(r, "fresh_tier2_solves");
    persisted += cacheField(r, "tasks_persisted");
    EXPECT_EQ(cacheField(r, "tasks_persisted") +
                  cacheField(r, "tasks_spliced") +
                  cacheField(r, "tasks_joined"),
              refTaskTotal);
  }
  // The single-flight guarantee: total fresh solver work across all eight
  // racing requests equals ONE single-session cold run — duplicates joined
  // the winner's claims instead of recomputing.
  EXPECT_EQ(fresh, refFresh);
  EXPECT_EQ(tier2, refTier2);
  EXPECT_EQ(persisted, refPersisted);

  // And the daemon's stats agree: no claim was abandoned mid-flight.
  JsonValue stats = parse(daemon.process(R"({"op":"stats"})"));
  ASSERT_TRUE(okOf(stats));
  const JsonValue* store = stats.find("store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->find("flight_unclaims")->asInt(), 0);
  EXPECT_EQ(store->find("task_stores")->asInt(), refPersisted);
}

TEST(ServerStress, FaultedWinnerNeverWedgesOrPoisonsRacingRequests) {
  const kernels::KernelSpec spec = kernels::stencilSpec(3);
  const std::string clean = analyzeFrame(spec, R"({"fastpath":"off"})");
  const std::string throwFault =
      analyzeFrame(spec, R"({"fastpath":"off","fault_throw_at":2})");
  // Unlike a fault (which detaches the store), a 1ms deadline cancels a
  // request that holds REAL single-flight claims mid-evaluation: its
  // claims must unwind so concurrent duplicates get promoted and
  // recompute — never hang, never inherit partial work.
  const std::string starved =
      analyzeFrame(spec, R"({"fastpath":"off","deadline_ms":1})");

  std::string reference;
  {
    ServeOptions opts;
    opts.sessions = 1;
    AnalysisServer daemon(opts);
    reference = deterministicPart(daemon.process(clean));
  }

  // Race clean analyses against mid-flight-failing duplicates of the same
  // kernel, repeatedly on one daemon: every clean response must match the
  // reference (the failed request's partial work never surfaces), every
  // faulted one must come back a typed error — promptly, never a hang.
  ServeOptions opts;
  opts.sessions = 8;
  AnalysisServer daemon(opts);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::string> lines(8);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < lines.size(); ++c)
      clients.emplace_back(
          [&daemon, &lines, &clean, &throwFault, &starved, c] {
            const std::string& frame =
                c % 4 == 0 ? throwFault : (c % 4 == 2 ? starved : clean);
            lines[c] = daemon.process(frame);
          });
    for (auto& t : clients) t.join();
    for (size_t c = 0; c < lines.size(); ++c) {
      if (c % 4 == 0) {
        EXPECT_EQ(errorCodeOf(parse(lines[c])), "kernel_error");
      } else if (c % 4 == 2) {
        // Deadline-cancelled mid-flight: answers ok (degraded), and its
        // abandoned claims were released, not left wedging the others.
        EXPECT_TRUE(okOf(parse(lines[c]))) << "round " << round;
      } else {
        EXPECT_EQ(deterministicPart(lines[c]), reference)
            << "round " << round;
      }
    }
  }
}

TEST(ServerStats, ExposesPoolOccupancyAndFlightCounters) {
  ServeOptions opts;
  opts.sessions = 1;
  opts.analysisThreads = 2;
  opts.allowOversubscribe = true;  // deterministic width on tiny CI boxes
  AnalysisServer daemon(opts);
  (void)daemon.process(analyzeFrame(kernels::stencilSpec(1)));
  JsonValue r = parse(daemon.process(R"({"op":"stats"})"));
  ASSERT_TRUE(okOf(r));

  const JsonValue* pool = r.find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->find("workers")->asInt(), 2);
  EXPECT_EQ(pool->find("busy_workers")->asInt(), 0);  // idle at stats time
  EXPECT_EQ(pool->find("queue_depth")->asInt(), 0);
  ASSERT_NE(pool->find("queued_by_priority"), nullptr);
  EXPECT_EQ(pool->find("queued_by_priority")->elements().size(), 3u);
  EXPECT_GE(pool->find("jobs_run")->asInt(), 1);
  EXPECT_GE(pool->find("tasks_owner_run")->asInt() +
                pool->find("tasks_stolen")->asInt(),
            1);

  const JsonValue* store = r.find("store");
  ASSERT_NE(store, nullptr);
  for (const char* key :
       {"flight_claims", "flight_joins", "flight_unclaims"}) {
    ASSERT_NE(store->find(key), nullptr) << key;
    EXPECT_GE(store->find(key)->asInt(), 0) << key;
  }
  EXPECT_EQ(store->find("flight_unclaims")->asInt(), 0);

  // Priority is accepted per request (scheduling-only; the response is
  // identical), and a bad class is a schema violation.
  EXPECT_TRUE(okOf(parse(daemon.process(
      analyzeFrame(kernels::stencilSpec(1), R"({"priority":"low"})")))));
  EXPECT_EQ(errorCodeOf(parse(daemon.process(
                analyzeFrame(kernels::stencilSpec(1),
                             R"({"priority":"urgent"})")))),
            "bad_request");
}

// ---------------------------------------------------------------------------
// Hybrid safeguard over the wire.

TEST(ServerProtocol, HybridSafeguardOptionAddsSiteVerdictLines) {
  AnalysisServer daemon(ServeOptions{});
  const kernels::KernelSpec spec = kernels::stencilSpec(2);

  // Default analyses never render site lines (byte-locked report).
  const std::string plain = stringField(
      parse(daemon.process(analyzeFrame(
          spec, R"({"fastpath":"off","solver_budget":2})"))),
      "report");
  EXPECT_EQ(plain.find("site "), std::string::npos);

  // "safeguard": "formad" is the explicit spelling of the default.
  const std::string formad = stringField(
      parse(daemon.process(analyzeFrame(
          spec,
          R"({"fastpath":"off","solver_budget":2,"safeguard":"formad"})"))),
      "report");
  EXPECT_EQ(formad, plain);

  // Hybrid + a starved budget: unproven residue surfaces per access site.
  const std::string hybrid = stringField(
      parse(daemon.process(analyzeFrame(
          spec,
          R"({"fastpath":"off","solver_budget":2,"safeguard":"hybrid"})"))),
      "report");
  EXPECT_NE(hybrid.find("site "), std::string::npos);
  EXPECT_NE(hybrid.find("UNSAFE (guard residual)"), std::string::npos);

  // Hybrid with an unlimited budget: everything proves, no residue, and
  // the site lines are elided wherever the variable verdict is SAFE.
  const std::string proven = stringField(
      parse(daemon.process(
          analyzeFrame(spec, R"({"safeguard":"hybrid"})"))),
      "report");
  EXPECT_NE(proven.find("SAFE"), std::string::npos);
  EXPECT_EQ(proven.find("guard residual"), std::string::npos);

  // Unknown safeguard values are schema violations, not silent defaults.
  EXPECT_EQ(errorCodeOf(parse(daemon.process(
                analyzeFrame(spec, R"({"safeguard":"atomic"})")))),
            "bad_request");
  EXPECT_EQ(errorCodeOf(parse(daemon.process(
                analyzeFrame(spec, R"({"safeguard":7})")))),
            "bad_request");
}

// ---------------------------------------------------------------------------
// Latency percentiles (support/percentile.h, used by bench/serve).

TEST(Percentile, DegenerateSamplesAreWellDefined) {
  EXPECT_EQ(support::percentileOf({}, 99), 0.0);
  for (double p : {0.0, 50.0, 99.0, 100.0})
    EXPECT_EQ(support::percentileOf({3.25}, p), 3.25);
}

TEST(Percentile, SmallSampleRankRounding) {
  const std::vector<double> xs = {5, 1, 4, 2, 3};  // sorted: 1 2 3 4 5
  EXPECT_DOUBLE_EQ(support::percentileOf(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(support::percentileOf(xs, 50), 3.0);
  // p99 over n=5: rank = 0.99 * 4 = 3.96 interpolates between the two
  // largest samples — NOT rounded up to the max.
  EXPECT_DOUBLE_EQ(support::percentileOf(xs, 99), 4.96);
  EXPECT_DOUBLE_EQ(support::percentileOf(xs, 100), 5.0);
  // Two samples: p99 sits just below the max.
  EXPECT_DOUBLE_EQ(support::percentileOf({10, 20}, 99), 19.9);
}

TEST(Percentile, OutOfRangeRequestsClampToExtremes) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(support::percentileOf(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(support::percentileOf(xs, 150), 5.0);
}

}  // namespace
