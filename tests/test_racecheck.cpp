// Tests for the static primal race checker (racecheck/) and its dynamic
// cross-validation oracle (exec::ExecOptions::logRaces).
//
// The matrix mirrors the PR's acceptance criteria: every paper kernel is
// statically proven race-free (with pins/colorings where the paper's own
// correctness argument needs them), every deliberately-racy mutant is
// flagged Racy with a concrete witness, and on every kernel the dynamic
// oracle's verdict on a concrete binding agrees with the static one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "exec/interp.h"
#include "kernels/data.h"
#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/indirect.h"
#include "kernels/lbm.h"
#include "kernels/mutants.h"
#include "kernels/stencil.h"
#include "parser/parser.h"
#include "racecheck/racecheck.h"
#include "support/diagnostics.h"

namespace formad::racecheck {
namespace {

RaceReport check(const kernels::KernelSpec& spec,
                 const RaceCheckOptions& opts = {}) {
  auto k = parser::parseKernel(spec.source);
  return checkKernelRaces(*k, opts);
}

/// Structural sanity of a Racy report: at least one witness, and every
/// witness names two *different* iterations with concrete index values
/// (scalar witnesses carry no indices — every pair collides).
void expectRacyWithWitness(const RaceReport& report) {
  ASSERT_EQ(report.overall(), RaceVerdict::Racy) << report.describe();
  bool sawWitness = false;
  for (const auto& region : report.regions) {
    for (const auto& w : region.witnesses) {
      sawWitness = true;
      EXPECT_NE(w.iterA, w.iterB) << report.describe();
      if (!w.scalar) {
        EXPECT_FALSE(w.indices.empty()) << report.describe();
      }
      EXPECT_FALSE(w.array.empty());
    }
  }
  EXPECT_TRUE(sawWitness) << report.describe();
}

/// Runs the kernel under the dynamic race oracle with the given binder.
template <typename Bind>
exec::RaceLog oracle(const kernels::KernelSpec& spec, Bind&& bind) {
  auto k = parser::parseKernel(spec.source);
  exec::Executor ex(*k);
  exec::Inputs io;
  kernels::Rng rng(42);
  bind(io, rng);
  exec::ExecOptions opts;
  opts.logRaces = true;
  return ex.run(io, opts).raceLog;
}

// ------------------------------------------------ paper kernels: race-free

TEST(RaceCheckStatic, CompactStencilIsRaceFree) {
  auto report = check(kernels::stencilSpec(1));
  EXPECT_EQ(report.overall(), RaceVerdict::RaceFree) << report.describe();
  ASSERT_EQ(report.regions.size(), 1u);
  EXPECT_EQ(report.regions[0].pairsChecked, 7);
  EXPECT_EQ(report.regions[0].pairsProven, 7);
  EXPECT_EQ(report.regions[0].pairsAssumed, 0);
}

TEST(RaceCheckStatic, WideStencilIsRaceFree) {
  auto report = check(kernels::stencilSpec(8));
  EXPECT_EQ(report.overall(), RaceVerdict::RaceFree) << report.describe();
  ASSERT_EQ(report.regions.size(), 1u);
  EXPECT_EQ(report.regions[0].pairsChecked, report.regions[0].pairsProven);
}

TEST(RaceCheckStatic, GfmcSplitIsRaceFree) {
  auto report = check(kernels::gfmcSplitSpec());
  EXPECT_EQ(report.overall(), RaceVerdict::RaceFree) << report.describe();
  EXPECT_EQ(report.regions.size(), 2u);
}

TEST(RaceCheckStatic, GfmcFusedIsRaceFree) {
  auto report = check(kernels::gfmcFusedSpec());
  EXPECT_EQ(report.overall(), RaceVerdict::RaceFree) << report.describe();
}

TEST(RaceCheckStatic, LbmIsRaceFreeWithPinnedFieldOffsets) {
  // The 19 per-direction field offsets and n_cell_entries are symbolic int
  // params; pinned to the paper's layout the displaced-write indices
  // linearize and all 190 pairs are proven disjoint.
  RaceCheckOptions opts;
  opts.paramValues = kernels::lbmPinnedParams();
  auto report = check(kernels::lbmSpec(), opts);
  EXPECT_EQ(report.overall(), RaceVerdict::RaceFree) << report.describe();
  ASSERT_EQ(report.regions.size(), 1u);
  EXPECT_EQ(report.regions[0].pairsChecked, 190);
  EXPECT_EQ(report.regions[0].pairsProven, 190);
}

TEST(RaceCheckStatic, LbmWithoutPinsIsUnknownNotRacy) {
  // Unpinned, the n_cell_entries*cell products are nonlinear; the checker
  // must degrade to Unknown (a data-dependent index is not a proof of a
  // race).
  auto report = check(kernels::lbmSpec());
  EXPECT_EQ(report.overall(), RaceVerdict::Unknown) << report.describe();
  for (const auto& region : report.regions)
    EXPECT_TRUE(region.witnesses.empty());
}

TEST(RaceCheckStatic, GreenGaussNeedsTheColoringFact) {
  // The edge->node gather is safe only because the mesh is edge-colored;
  // without that promise the verdict is Unknown, with it the pairs are
  // discharged as *assumed* (not proven).
  auto plain = check(kernels::greenGaussSpec());
  EXPECT_EQ(plain.overall(), RaceVerdict::Unknown) << plain.describe();

  RaceCheckOptions opts;
  opts.colorings.insert("edge2nodes");
  auto colored = check(kernels::greenGaussSpec(), opts);
  EXPECT_EQ(colored.overall(), RaceVerdict::RaceFree) << colored.describe();
  ASSERT_EQ(colored.regions.size(), 1u);
  EXPECT_EQ(colored.regions[0].pairsAssumed, 7);
  EXPECT_EQ(colored.regions[0].pairsProven, 0);
}

TEST(RaceCheckStatic, IndirectGatherNeedsTheColoringFact) {
  auto plain = check(kernels::indirectSpec());
  EXPECT_EQ(plain.overall(), RaceVerdict::Unknown) << plain.describe();

  RaceCheckOptions opts;
  opts.colorings.insert("c");
  auto colored = check(kernels::indirectSpec(), opts);
  EXPECT_EQ(colored.overall(), RaceVerdict::RaceFree) << colored.describe();
}

// ------------------------------------------------ mutants: proven racy

TEST(RaceCheckStatic, StencilRacyMutantHasAdjacentIterationWitness) {
  auto report = check(kernels::stencilRacySpec());
  expectRacyWithWitness(report);
  // The mutant writes unew[i+1] on top of the next iteration's unew[i]:
  // some witness must pin two adjacent iterations to the same element.
  bool adjacent = false;
  for (const auto& region : report.regions)
    for (const auto& w : region.witnesses)
      if (w.array == "unew" && std::llabs(w.iterA - w.iterB) == 1)
        adjacent = true;
  EXPECT_TRUE(adjacent) << report.describe();
}

TEST(RaceCheckStatic, StrideStencilRacyMutantIsRacy) {
  // The stride-2 loop writing one stride behind collides across the
  // lattice: the witness iterations must differ by the stride.
  auto report = check(kernels::stencilStrideRacySpec());
  expectRacyWithWitness(report);
  bool strideApart = false;
  for (const auto& region : report.regions)
    for (const auto& w : region.witnesses)
      if (std::llabs(w.iterA - w.iterB) == 2) strideApart = true;
  EXPECT_TRUE(strideApart) << report.describe();
}

TEST(RaceCheckStatic, LbmRacyMutantNeedsPinsToProduceTheWitness) {
  // Unpinned the offsets are symbolic and the verdict stays Unknown...
  auto unpinned = check(kernels::lbmRacySpec());
  EXPECT_EQ(unpinned.overall(), RaceVerdict::Unknown) << unpinned.describe();

  // ...pinned, the displaced own-cell/neighbor-cell write pair collides.
  RaceCheckOptions opts;
  opts.paramValues = {{"n_cell_entries", 20}, {"c", 0}, {"margin", 2}};
  auto report = check(kernels::lbmRacySpec(), opts);
  expectRacyWithWitness(report);
}

TEST(RaceCheckStatic, GatherRacyMutantReportsBothConflictKinds) {
  auto report = check(kernels::gatherRacySpec());
  expectRacyWithWitness(report);
  // y[0] is written on every iteration and read on every iteration: both a
  // write/write and a read/write witness must be found, and the
  // data-dependent c(i) gather pairs must stay undecided, not Racy.
  bool ww = false, rw = false;
  ASSERT_EQ(report.regions.size(), 1u);
  for (const auto& w : report.regions[0].witnesses) {
    if (w.bothWrites) ww = true;
    else rw = true;
  }
  EXPECT_TRUE(ww) << report.describe();
  EXPECT_TRUE(rw) << report.describe();
  EXPECT_FALSE(report.regions[0].undecided.empty());
}

TEST(RaceCheckStatic, SharedScalarSumIsTriviallyRacy) {
  auto report = check(kernels::sumRacySpec());
  expectRacyWithWitness(report);
  ASSERT_EQ(report.regions.size(), 1u);
  ASSERT_FALSE(report.regions[0].witnesses.empty());
  EXPECT_TRUE(report.regions[0].witnesses[0].scalar);
  // No solver involvement: the shared-scalar rule fires structurally.
  EXPECT_EQ(report.regions[0].queries, 0);
}

// ------------------------------------------------ witness rendering

TEST(RaceCheckStatic, WitnessRenderNamesLocationsAndIterations) {
  auto report = check(kernels::stencilRacySpec());
  ASSERT_EQ(report.overall(), RaceVerdict::Racy);
  ASSERT_FALSE(report.regions.empty());
  ASSERT_FALSE(report.regions[0].witnesses.empty());
  const auto& w = report.regions[0].witnesses[0];
  std::string s = w.render();
  EXPECT_NE(s.find(w.array), std::string::npos) << s;
  EXPECT_NE(s.find(std::to_string(w.iterA)), std::string::npos) << s;
  EXPECT_NE(s.find(std::to_string(w.iterB)), std::string::npos) << s;
  std::string full = report.describe();
  EXPECT_NE(full.find("racy"), std::string::npos) << full;
}

// ------------------------------------------------ dynamic oracle agreement

TEST(RaceOracle, CleanOnTheRaceFreeKernels) {
  auto stencil = oracle(kernels::stencilSpec(1),
                        [](exec::Inputs& io, kernels::Rng& rng) {
                          kernels::bindStencil(io, 1, 64, rng);
                        });
  EXPECT_FALSE(stencil.any()) << stencil.describe();

  auto gg = oracle(kernels::greenGaussSpec(),
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::GreenGaussConfig cfg;
                     cfg.nodes = 200;
                     kernels::bindGreenGauss(io, cfg, rng);
                   });
  EXPECT_FALSE(gg.any()) << gg.describe();

  kernels::GfmcConfig gcfg;
  gcfg.ns = 8;
  gcfg.nw = 16;
  gcfg.npair = 6;
  gcfg.nk = 4;
  auto gfmc = oracle(kernels::gfmcSplitSpec(),
                     [&](exec::Inputs& io, kernels::Rng& rng) {
                       kernels::bindGfmc(io, gcfg, rng);
                     });
  EXPECT_FALSE(gfmc.any()) << gfmc.describe();

  kernels::LbmLayout layout;
  layout.nx = 8;
  layout.ny = 8;
  layout.nz = 4;
  auto lbm = oracle(kernels::lbmSpec(layout),
                    [&](exec::Inputs& io, kernels::Rng& rng) {
                      kernels::bindLbm(io, layout, rng);
                    });
  EXPECT_FALSE(lbm.any()) << lbm.describe();
}

TEST(RaceOracle, ObservesEveryMutantRace) {
  struct Case {
    kernels::KernelSpec spec;
    std::function<void(exec::Inputs&, kernels::Rng&)> bind;
  };
  std::vector<Case> cases;
  cases.push_back({kernels::stencilRacySpec(),
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindStencilRacy(io, 32, rng);
                   }});
  cases.push_back({kernels::stencilStrideRacySpec(),
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindStencilStrideRacy(io, 33, rng);
                   }});
  cases.push_back({kernels::lbmRacySpec(),
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindLbmRacy(io, 16, rng);
                   }});
  cases.push_back({kernels::gatherRacySpec(),
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindGatherRacy(io, 32, rng);
                   }});
  cases.push_back({kernels::sumRacySpec(),
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindSumRacy(io, 32, rng);
                   }});
  for (auto& c : cases) {
    auto log = oracle(c.spec, c.bind);
    EXPECT_TRUE(log.any()) << c.spec.name << " produced no runtime events";
    for (const auto& e : log.events)
      EXPECT_NE(e.iterA, e.iterB) << c.spec.name;
  }
}

TEST(RaceOracle, ScalarSumConflictIsTaggedScalar) {
  auto log = oracle(kernels::sumRacySpec(),
                    [](exec::Inputs& io, kernels::Rng& rng) {
                      kernels::bindSumRacy(io, 8, rng);
                    });
  ASSERT_TRUE(log.any());
  bool scalar = false;
  for (const auto& e : log.events)
    if (e.scalar && e.var == "s") scalar = true;
  EXPECT_TRUE(scalar) << log.describe();
}

TEST(RaceOracle, CatchesABrokenColoringTheStaticCheckerCannot) {
  // Statically the correct Green-Gauss kernel is Unknown with or without a
  // trustworthy coloring — the coloring is an *assumption*. Binding a
  // deliberately conflicting coloring is caught only at runtime, which is
  // the oracle's reason to exist.
  auto log = oracle(kernels::greenGaussSpec(),
                    [](exec::Inputs& io, kernels::Rng& rng) {
                      kernels::bindGreenGaussBroken(io, 64, rng);
                    });
  EXPECT_TRUE(log.any());
  bool onGrad = false;
  for (const auto& e : log.events)
    if (e.var == "grad") onGrad = true;
  EXPECT_TRUE(onGrad) << log.describe();
}

TEST(RaceOracle, EventCapIsCountedNotSilent) {
  // 512 iterations all colliding on unew produce far more than the 64-event
  // cap; the overflow must surface as a count, not vanish.
  auto log = oracle(kernels::stencilRacySpec(),
                    [](exec::Inputs& io, kernels::Rng& rng) {
                      kernels::bindStencilRacy(io, 512, rng);
                    });
  ASSERT_TRUE(log.any());
  EXPECT_EQ(log.events.size(), 64u) << "cap should be filled exactly";
  EXPECT_GT(log.dropped, 0);
  // describe() must surface the exact overflow count, not just a vague
  // truncation marker.
  const std::string text = log.describe();
  const std::string tail =
      "... and " + std::to_string(log.dropped) + " more conflicts\n";
  EXPECT_NE(text.find(tail), std::string::npos) << text;
}

TEST(RaceOracle, DroppedCountsEveryEventBeyondTheCapExactly) {
  // A shifted-write loop with a conflict count known in closed form:
  // iteration i writes a[i] and a[i + 1], so iterations i-1 and i collide
  // on exactly the n-2 interior elements — one write-write event each,
  // nothing else. That makes the cap accounting checkable to the event:
  // with C conflicts the log must hold min(C, 64) events and report
  // dropped == max(0, C - 64), not an approximation.
  auto conflicts = [](long long n) {
    kernels::KernelSpec spec;
    spec.name = "race_cap";
    spec.source = R"(
kernel race_cap(n: int in, x: real[] in, a: real[] out) {
  parallel for i = 0 : n - 2 {
    a[i] = x[i];
    a[i + 1] = x[i] + 1.0;
  }
}
)";
    return oracle(spec, [n](exec::Inputs& io, kernels::Rng& rng) {
      io.bindInt("n", n);
      auto& x = io.bindArray("x", exec::ArrayValue::reals({n}));
      kernels::fillUniform(x, rng, 0.0, 1.0);
      io.bindArray("a", exec::ArrayValue::reals({n}));
    });
  };

  // 98 conflicts: the cap fills exactly and the other 34 are all counted.
  exec::RaceLog over = conflicts(100);
  EXPECT_EQ(over.events.size(), 64u);
  EXPECT_EQ(over.dropped, 34);

  // 64 conflicts land exactly on the cap: nothing may be dropped.
  exec::RaceLog atCap = conflicts(66);
  EXPECT_EQ(atCap.events.size(), 64u);
  EXPECT_EQ(atCap.dropped, 0);

  // One past the cap drops exactly one.
  exec::RaceLog justOver = conflicts(67);
  EXPECT_EQ(justOver.events.size(), 64u);
  EXPECT_EQ(justOver.dropped, 1);
}

// ------------------------------------------------ driver pre-flight gate

TEST(RaceCheckDriver, RefusesToDifferentiateARacyPrimal) {
  auto spec = kernels::stencilRacySpec();
  auto k = parser::parseKernel(spec.source);
  driver::DriverOptions opts;
  opts.mode = driver::AdjointMode::Atomic;
  opts.racecheckPrimal = true;
  try {
    (void)driver::differentiate(*k, spec.independents, spec.dependents, opts);
    FAIL() << "expected the race gate to throw";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("data race"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unew"), std::string::npos) << msg;
  }
}

TEST(RaceCheckDriver, InconclusiveCheckDegradesToAWarning) {
  auto spec = kernels::greenGaussSpec();
  auto k = parser::parseKernel(spec.source);
  driver::DriverOptions opts;
  opts.mode = driver::AdjointMode::Atomic;
  opts.racecheckPrimal = true;  // no coloring fact -> Unknown
  auto dr = driver::differentiate(*k, spec.independents, spec.dependents, opts);
  ASSERT_NE(dr.adjoint, nullptr);
  EXPECT_EQ(dr.raceReport.overall(), RaceVerdict::Unknown);
  ASSERT_FALSE(dr.warnings.empty());
  EXPECT_NE(dr.warnings[0].find("inconclusive"), std::string::npos);
}

TEST(RaceCheckDriver, RaceFreePrimalPassesTheGateSilently) {
  auto spec = kernels::stencilSpec(1);
  auto k = parser::parseKernel(spec.source);
  driver::DriverOptions opts;
  opts.mode = driver::AdjointMode::FormAD;
  opts.racecheckPrimal = true;
  auto dr = driver::differentiate(*k, spec.independents, spec.dependents, opts);
  ASSERT_NE(dr.adjoint, nullptr);
  EXPECT_EQ(dr.raceReport.overall(), RaceVerdict::RaceFree);
  EXPECT_TRUE(dr.warnings.empty());
}

TEST(RaceCheckDriver, ColoringFactForwardsThroughDriverOptions) {
  auto spec = kernels::greenGaussSpec();
  auto k = parser::parseKernel(spec.source);
  driver::DriverOptions opts;
  opts.mode = driver::AdjointMode::Atomic;
  opts.racecheckPrimal = true;
  opts.racecheck.colorings.insert("edge2nodes");
  auto dr = driver::differentiate(*k, spec.independents, spec.dependents, opts);
  ASSERT_NE(dr.adjoint, nullptr);
  EXPECT_EQ(dr.raceReport.overall(), RaceVerdict::RaceFree);
  EXPECT_TRUE(dr.warnings.empty());
}

// ------------------------------------------------ static/dynamic agreement

TEST(RaceCheckAgreement, StaticAndDynamicVerdictsAgreeEverywhere) {
  // RaceFree statically -> the oracle must be clean on a correct binding;
  // Racy statically -> the oracle must observe events. (Unknown statically
  // is checked in the individual tests above: greengauss is clean with the
  // correct coloring, racy with the broken one.)
  struct Case {
    kernels::KernelSpec spec;
    RaceCheckOptions opts;
    std::function<void(exec::Inputs&, kernels::Rng&)> bind;
    bool racy;
  };
  RaceCheckOptions lbmPins;
  lbmPins.paramValues = kernels::lbmPinnedParams();
  kernels::LbmLayout small{8, 8, 4, 20};

  std::vector<Case> cases;
  cases.push_back({kernels::stencilSpec(2), {},
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindStencil(io, 2, 48, rng);
                   },
                   false});
  cases.push_back({kernels::lbmSpec(small), lbmPins,
                   [&](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindLbm(io, small, rng);
                   },
                   false});
  cases.push_back({kernels::stencilRacySpec(), {},
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindStencilRacy(io, 24, rng);
                   },
                   true});
  cases.push_back({kernels::sumRacySpec(), {},
                   [](exec::Inputs& io, kernels::Rng& rng) {
                     kernels::bindSumRacy(io, 24, rng);
                   },
                   true});

  for (auto& c : cases) {
    auto staticReport = check(c.spec, c.opts);
    auto log = oracle(c.spec, c.bind);
    if (c.racy) {
      EXPECT_EQ(staticReport.overall(), RaceVerdict::Racy) << c.spec.name;
      EXPECT_TRUE(log.any()) << c.spec.name;
    } else {
      EXPECT_EQ(staticReport.overall(), RaceVerdict::RaceFree)
          << c.spec.name << "\n" << staticReport.describe();
      EXPECT_FALSE(log.any()) << c.spec.name << "\n" << log.describe();
    }
  }
}

}  // namespace
}  // namespace formad::racecheck
