// Schedule simulation and cost-model behaviour: the mechanisms that
// produce the paper's figure shapes must hold qualitatively for any
// reasonable parameter set.
#include <gtest/gtest.h>

#include "exec/costmodel.h"
#include "exec/simulate.h"

namespace formad::exec {
namespace {

TEST(Schedule, StaticContiguousChunks) {
  std::vector<double> iters(8, 1.0);
  auto busy = scheduleThreads(iters, 4, /*dynamic=*/false);
  ASSERT_EQ(busy.size(), 4u);
  for (double b : busy) EXPECT_DOUBLE_EQ(b, 2.0);
}

TEST(Schedule, StaticImbalanceHurts) {
  // One heavy chunk dominates under static scheduling.
  std::vector<double> iters(8, 0.1);
  iters[0] = 10.0;
  iters[1] = 10.0;  // both land in thread 0's chunk
  double staticT = scheduleMakespan(iters, 4, false);
  double dynamicT = scheduleMakespan(iters, 4, true);
  EXPECT_GT(staticT, dynamicT);
  EXPECT_NEAR(dynamicT, 10.0, 0.5);
}

TEST(Schedule, DynamicIsGreedyOptimalForUniform) {
  std::vector<double> iters(100, 1.0);
  EXPECT_NEAR(scheduleMakespan(iters, 10, true), 10.0, 1e-9);
}

TEST(Schedule, MoreThreadsNeverSlower) {
  std::vector<double> iters;
  for (int i = 0; i < 57; ++i) iters.push_back(0.1 + (i % 7) * 0.05);
  double prev = scheduleMakespan(iters, 1, true);
  for (int t = 2; t <= 16; t *= 2) {
    double cur = scheduleMakespan(iters, t, true);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(Schedule, EmptyLoop) {
  EXPECT_DOUBLE_EQ(scheduleMakespan({}, 4, false), 0.0);
  EXPECT_DOUBLE_EQ(scheduleMakespan({}, 4, true), 0.0);
}

LoopProfile uniformLoop(int iters, OpCounts perIter, bool dynamic = false) {
  LoopProfile lp;
  lp.dynamicSchedule = dynamic;
  lp.perIteration.assign(static_cast<size_t>(iters), perIter);
  return lp;
}

TEST(CostModel, FlopBoundLoopScalesLinearly) {
  CostParams p;
  OpCounts c;
  c.flops = 100;
  LoopProfile lp = uniformLoop(100000, c);
  double t1 = loopTime(lp, p, 1);
  double t18 = loopTime(lp, p, 18);
  EXPECT_GT(t1 / t18, 12.0);
  EXPECT_LT(t1 / t18, 18.5);
}

TEST(CostModel, RandomTrafficSaturatesEarly) {
  CostParams p;
  OpCounts c;
  c.randBytes = 48;
  c.flops = 4;
  LoopProfile lp = uniformLoop(200000, c);
  double t1 = loopTime(lp, p, 1);
  double t18 = loopTime(lp, p, 18);
  // Memory-bound: some speedup, far from linear (Green-Gauss ~2.75x).
  EXPECT_GT(t1 / t18, 1.5);
  EXPECT_LT(t1 / t18, 6.0);
}

TEST(CostModel, AtomicsDegradeWithThreads) {
  CostParams p;
  OpCounts c;
  c.flops = 6;
  c.seqBytes = 48;
  c.atomicOps = 3;
  LoopProfile lp = uniformLoop(100000, c);
  double t1 = loopTime(lp, p, 1);
  double t18 = loopTime(lp, p, 18);
  // Paper Figs. 3-6: the atomic version is best at 1 thread and slows
  // down as threads are added.
  EXPECT_GT(t18, t1);
}

TEST(CostModel, AtomicsCostFarMoreThanPlainIncrements) {
  CostParams p;
  OpCounts plain;
  plain.flops = 6;
  plain.seqBytes = 48;
  OpCounts atomic = plain;
  atomic.atomicOps = 3;
  double tp = loopTime(uniformLoop(100000, plain), p, 1);
  double ta = loopTime(uniformLoop(100000, atomic), p, 1);
  EXPECT_GT(ta / tp, 5.0);  // paper: ~25x for the small stencil
}

TEST(CostModel, ReductionOverheadGrowsWithThreads) {
  CostParams p;
  OpCounts c;
  c.flops = 6;
  c.seqBytes = 48;
  LoopProfile lp = uniformLoop(100000, c);
  lp.reductionBytes = 8e6;  // 1M doubles privatized
  double t1 = loopTime(lp, p, 1);
  double t18 = loopTime(lp, p, 18);
  // The merge term scales with T and eventually dominates.
  EXPECT_GT(t18, loopTime(uniformLoop(100000, c), p, 18));
  double merge1 = 1 * lp.reductionBytes * p.shadowMergeByte;
  double merge18 = 18 * lp.reductionBytes * p.shadowMergeByte;
  EXPECT_GT(t18 - (t1 - merge1), merge18 - merge1 - 1e-9);
}

TEST(CostModel, SerializedLoopIgnoresThreadsAndOverheads) {
  CostParams p;
  OpCounts c;
  c.flops = 10;
  LoopProfile lp = uniformLoop(1000, c);
  EXPECT_DOUBLE_EQ(loopTime(lp, p, 0), loopTime(lp, p, 0));
  EXPECT_LT(loopTime(lp, p, 0), loopTime(lp, p, 1));  // no region overhead
}

TEST(CostModel, ThreadsCappedAtSocketSize) {
  CostParams p;
  OpCounts c;
  c.flops = 100;
  LoopProfile lp = uniformLoop(100000, c);
  EXPECT_DOUBLE_EQ(loopTime(lp, p, 18), loopTime(lp, p, 64));
}

TEST(CostModel, DynamicScheduleHelpsImbalancedLoops) {
  CostParams p;
  OpCounts light, heavy;
  light.flops = 1;
  heavy.flops = 1000;
  LoopProfile staticLp, dynLp;
  for (int i = 0; i < 1024; ++i) {
    OpCounts c = (i < 64) ? heavy : light;  // heavy head like GFMC pairs
    staticLp.perIteration.push_back(c);
    dynLp.perIteration.push_back(c);
  }
  staticLp.dynamicSchedule = false;
  dynLp.dynamicSchedule = true;
  EXPECT_LT(loopTime(dynLp, p, 8), loopTime(staticLp, p, 8));
}

TEST(CostModel, RunTimeSumsSerialAndLoops) {
  CostParams p;
  RunProfile rp;
  rp.serial.flops = 1e6;
  OpCounts c;
  c.flops = 10;
  rp.loops.push_back(uniformLoop(1000, c));
  double serialOnly = iterationTime(rp.serial, p, 1);
  EXPECT_GT(runTime(rp, p, 4), serialOnly);
  EXPECT_GT(serialTime(rp, p), serialOnly);
}

}  // namespace
}  // namespace formad::exec
