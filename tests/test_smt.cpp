// Unit and property tests for the SMT substrate: exact rationals, linear
// expressions, the Gaussian equality engine, congruence closure, and the
// solver facade — including a randomized cross-check against brute-force
// enumeration over a small integer domain.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "smt/fastpath.h"
#include "smt/solver.h"
#include "support/diagnostics.h"

namespace formad::smt {
namespace {

// ---------------------------------------------------------------- Rational

TEST(Rational, NormalizationAndArithmetic) {
  Rational a(2, 4);
  EXPECT_EQ(a.num(), 1);
  EXPECT_EQ(a.den(), 2);
  Rational b(-3, -6);
  EXPECT_EQ(b, a);
  Rational c(3, -6);
  EXPECT_EQ(c, -a);

  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
  EXPECT_EQ(Rational(7).inverse(), Rational(1, 7));
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GE(Rational(5, 5), Rational(1));
  EXPECT_EQ(Rational(0).sign(), 0);
  EXPECT_EQ(Rational(-7, 3).sign(), -1);
}

TEST(Rational, IntegerPredicates) {
  EXPECT_TRUE(Rational(4, 2).isInteger());
  EXPECT_FALSE(Rational(1, 2).isInteger());
  EXPECT_TRUE(Rational(0).isZero());
}

TEST(Rational, GcdLcmHelpers) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(1, 7), 7);
}

// ---------------------------------------------------------------- LinExpr

TEST(LinExpr, TermMergingDropsZeros) {
  LinExpr e;
  e.addTerm(3, Rational(2));
  e.addTerm(3, Rational(-2));
  EXPECT_TRUE(e.isConstant());
  e.addTerm(1, Rational(1));
  e.addConstant(Rational(5));
  EXPECT_EQ(e.coeff(1), Rational(1));
  EXPECT_EQ(e.constant(), Rational(5));
}

TEST(LinExpr, Arithmetic) {
  LinExpr a = LinExpr::atom(0) + LinExpr::atom(1).scaled(Rational(2));
  LinExpr b = LinExpr::atom(1).scaled(Rational(-2)) + LinExpr(Rational(7));
  LinExpr s = a + b;
  EXPECT_EQ(s.coeff(0), Rational(1));
  EXPECT_EQ(s.coeff(1), Rational(0));
  EXPECT_EQ(s.constant(), Rational(7));
  EXPECT_TRUE((a - a).isZero());
}

TEST(LinExpr, KeyIsStable) {
  LinExpr a = LinExpr::atom(2) + LinExpr(Rational(1));
  LinExpr b = LinExpr(Rational(1)) + LinExpr::atom(2);
  EXPECT_EQ(a.key(), b.key());
}

// ---------------------------------------------------------------- LiaSystem

TEST(Lia, EntailmentThroughSubstitution) {
  LiaSystem lia;
  // x0 = x1 + 1, x1 = 5  =>  x0 - 6 == 0
  ASSERT_TRUE(lia.addEquality(LinExpr::atom(0) - LinExpr::atom(1) -
                              LinExpr(Rational(1))));
  ASSERT_TRUE(lia.addEquality(LinExpr::atom(1) - LinExpr(Rational(5))));
  EXPECT_TRUE(lia.impliesZero(LinExpr::atom(0) - LinExpr(Rational(6))));
  EXPECT_FALSE(lia.impliesZero(LinExpr::atom(0) - LinExpr(Rational(5))));
}

TEST(Lia, RationalConflict) {
  LiaSystem lia;
  ASSERT_TRUE(lia.addEquality(LinExpr::atom(0) - LinExpr(Rational(1))));
  EXPECT_FALSE(lia.addEquality(LinExpr::atom(0) - LinExpr(Rational(2))));
}

TEST(Lia, RedundantEqualityIsAccepted) {
  LiaSystem lia;
  ASSERT_TRUE(lia.addEquality(LinExpr::atom(0) - LinExpr::atom(1)));
  EXPECT_TRUE(lia.addEquality(LinExpr::atom(1) - LinExpr::atom(0)));
  EXPECT_EQ(lia.rowCount(), 1u);
}

TEST(Lia, GcdIntegerInfeasibility) {
  LiaSystem lia;
  // 2x = 1 has no integer solution.
  ASSERT_TRUE(lia.addEquality(LinExpr::atom(0).scaled(Rational(2)) -
                              LinExpr(Rational(1))));
  EXPECT_FALSE(lia.integerFeasible());

  LiaSystem ok;
  ASSERT_TRUE(ok.addEquality(LinExpr::atom(0).scaled(Rational(2)) -
                             LinExpr(Rational(4))));
  EXPECT_TRUE(ok.integerFeasible());
}

// ---------------------------------------------------------------- Solver

class SolverTest : public ::testing::Test {
 protected:
  AtomTable atoms;
  AtomId i = atoms.internVar("i", 0, false);
  AtomId ip = atoms.internVar("i", 0, true);
  Solver solver{atoms};
};

TEST_F(SolverTest, PaperFig2Scenario) {
  // knowledge: i != i', c(i') != c(i); question: c(i')+7 == c(i)+7.
  AtomId ci = atoms.internUF("c", {LinExpr::atom(i)});
  AtomId cip = atoms.internUF("c", {LinExpr::atom(ip)});
  solver.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  solver.add(Constraint::ne(LinExpr::atom(cip), LinExpr::atom(ci)));
  EXPECT_EQ(solver.check(), CheckResult::Sat);

  solver.push();
  solver.add(Constraint::eq(LinExpr::atom(cip) + LinExpr(Rational(7)),
                            LinExpr::atom(ci) + LinExpr(Rational(7))));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
  solver.pop();
  EXPECT_EQ(solver.check(), CheckResult::Sat);
}

TEST_F(SolverTest, CongruenceMergesEqualArguments) {
  // i' == i + 0 forces c(i') == c(i), contradicting c(i') != c(i).
  AtomId ci = atoms.internUF("c", {LinExpr::atom(i)});
  AtomId cip = atoms.internUF("c", {LinExpr::atom(ip)});
  solver.add(Constraint::ne(LinExpr::atom(cip), LinExpr::atom(ci)));
  solver.add(Constraint::eq(LinExpr::atom(ip), LinExpr::atom(i)));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
}

TEST_F(SolverTest, DistinctFunctionsDoNotMerge) {
  AtomId ci = atoms.internUF("c", {LinExpr::atom(i)});
  AtomId di = atoms.internUF("d", {LinExpr::atom(i)});
  solver.add(Constraint::ne(LinExpr::atom(ci), LinExpr::atom(di)));
  EXPECT_EQ(solver.check(), CheckResult::Sat);
}

TEST_F(SolverTest, NestedCongruence) {
  // i' == i  =>  c(i') == c(i)  =>  d(c(i')) == d(c(i)).
  AtomId ci = atoms.internUF("c", {LinExpr::atom(i)});
  AtomId cip = atoms.internUF("c", {LinExpr::atom(ip)});
  AtomId dci = atoms.internUF("d", {LinExpr::atom(ci)});
  AtomId dcip = atoms.internUF("d", {LinExpr::atom(cip)});
  solver.add(Constraint::eq(LinExpr::atom(ip), LinExpr::atom(i)));
  solver.add(Constraint::ne(LinExpr::atom(dcip), LinExpr::atom(dci)));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
}

TEST_F(SolverTest, StencilKnowledgePattern) {
  // knowledge: i' != i, i' != i-1, i'-1 != i, i'-1 != i-1.
  LinExpr I = LinExpr::atom(i), Ip = LinExpr::atom(ip);
  LinExpr one{Rational(1)};
  solver.add(Constraint::ne(Ip, I));
  solver.add(Constraint::ne(Ip, I - one));
  solver.add(Constraint::ne(Ip - one, I));
  solver.add(Constraint::ne(Ip - one, I - one));
  EXPECT_EQ(solver.check(), CheckResult::Sat);
  // All four adjoint pairs must be refuted.
  const LinExpr ws[2] = {Ip, Ip - one};
  const LinExpr xs[2] = {I, I - one};
  for (const auto& w : ws)
    for (const auto& x : xs) {
      solver.push();
      solver.add(Constraint::eq(w, x));
      EXPECT_EQ(solver.check(), CheckResult::Unsat);
      solver.pop();
    }
}

TEST_F(SolverTest, LbmUnsafePattern) {
  // knowledge: (eb' + n*-14399 + i') != (eb + n*-14399 + i) and friends do
  // NOT refute (eb' + i') == (eb + i).
  AtomId ebA = atoms.internVar("eb", 0, false);
  AtomId nA = atoms.internVar("n_cell_entries", 0, false);
  LinExpr EB = LinExpr::atom(ebA), N = LinExpr::atom(nA);
  LinExpr I = LinExpr::atom(i), Ip = LinExpr::atom(ip);
  solver.add(Constraint::ne(Ip, I));
  solver.add(Constraint::ne(EB + N.scaled(Rational(-14399)) + Ip,
                            EB + N.scaled(Rational(-14399)) + I));
  solver.push();
  solver.add(Constraint::eq(EB + Ip, EB + I));
  // i' == i contradicts the root assertion -> Unsat? No: the question uses
  // the *unprimed write against primed write of a different offset*. Use
  // distinct offsets to model the real situation:
  solver.pop();
  solver.push();
  // question: (eb' + n*0 + i') == (c + n*0 + i) with distinct field vars.
  AtomId cA = atoms.internVar("c", 0, false);
  solver.add(Constraint::eq(EB + Ip, LinExpr::atom(cA) + I));
  EXPECT_EQ(solver.check(), CheckResult::Sat);  // not provably disjoint
  solver.pop();
}

TEST_F(SolverTest, InequalitySupport) {
  LinExpr I = LinExpr::atom(i);
  solver.add(Constraint::le(I, LinExpr(Rational(5))));       // i <= 5
  solver.add(Constraint::le(LinExpr(Rational(7)), I));       // i >= 7
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
}

TEST_F(SolverTest, PointIntervalPlusDisequality) {
  LinExpr I = LinExpr::atom(i);
  solver.add(Constraint::le(I, LinExpr(Rational(4))));
  solver.add(Constraint::le(LinExpr(Rational(4)), I));
  solver.add(Constraint::ne(I, LinExpr(Rational(4))));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
}

TEST_F(SolverTest, StatsCountAssertionsAndChecks) {
  solver.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  (void)solver.check();
  (void)solver.check();
  EXPECT_EQ(solver.stats().assertionsAdded, 1);
  EXPECT_EQ(solver.stats().checks, 2);
}

TEST_F(SolverTest, PushPopRestoresAssertionCount) {
  solver.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  solver.push();
  solver.add(Constraint::eq(LinExpr::atom(ip), LinExpr::atom(i)));
  EXPECT_EQ(solver.assertionCount(), 2u);
  solver.pop();
  EXPECT_EQ(solver.assertionCount(), 1u);
  EXPECT_EQ(solver.check(), CheckResult::Sat);
}

// ------------------------------------------------ property: brute force

/// Random conjunctions of (dis)equalities over 3 integer variables with
/// small coefficients, cross-checked against enumeration over [-4, 4]^3.
/// The solver must never answer Unsat when a model exists in that box
/// (soundness); when it answers Sat and the box has no model, the formula
/// may still have a model outside the box, so only the Unsat direction is
/// a hard check.
TEST(SolverProperty, UnsatSoundnessAgainstBruteForce) {
  std::mt19937_64 rng(20220829);
  std::uniform_int_distribution<int> coeff(-3, 3);
  std::uniform_int_distribution<int> numCons(1, 6);
  std::uniform_int_distribution<int> relPick(0, 2);

  for (int trial = 0; trial < 400; ++trial) {
    AtomTable atoms;
    AtomId v[3] = {atoms.internVar("a", 0, false),
                   atoms.internVar("b", 0, false),
                   atoms.internVar("c", 0, false)};
    Solver solver(atoms);

    struct Con {
      int c[3];
      int k;
      Rel rel;
    };
    std::vector<Con> cons;
    int n = numCons(rng);
    for (int j = 0; j < n; ++j) {
      Con con{};
      LinExpr e;
      for (int q = 0; q < 3; ++q) {
        con.c[q] = coeff(rng);
        e.addTerm(v[q], Rational(con.c[q]));
      }
      con.k = coeff(rng);
      e.addConstant(Rational(con.k));
      con.rel = static_cast<Rel>(relPick(rng));
      cons.push_back(con);
      solver.add(Constraint{e, con.rel});
    }

    bool bruteSat = false;
    for (int a = -4; a <= 4 && !bruteSat; ++a)
      for (int b = -4; b <= 4 && !bruteSat; ++b)
        for (int cc = -4; cc <= 4 && !bruteSat; ++cc) {
          bool ok = true;
          for (const auto& con : cons) {
            long long val =
                con.c[0] * a + con.c[1] * b + con.c[2] * cc + con.k;
            if (con.rel == Rel::Eq && val != 0) ok = false;
            if (con.rel == Rel::Ne && val == 0) ok = false;
            if (con.rel == Rel::Le && val > 0) ok = false;
          }
          bruteSat = ok;
        }

    CheckResult r = solver.check();
    if (bruteSat) {
      EXPECT_NE(r, CheckResult::Unsat)
          << "solver refuted a satisfiable conjunction (trial " << trial
          << ")";
    }
  }
}

/// Equality-only conjunctions are decided exactly over the rationals: if
/// brute force over a large box finds no solution AND the system is
/// infeasible over Q or gcd-infeasible, the solver must say Unsat for
/// directly contradicting equalities.
TEST(SolverProperty, EntailedEqualityContradictsDisequality) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> coeff(-2, 2);
  for (int trial = 0; trial < 200; ++trial) {
    AtomTable atoms;
    AtomId a = atoms.internVar("a", 0, false);
    AtomId b = atoms.internVar("b", 0, false);
    Solver solver(atoms);
    int c1 = coeff(rng), c2 = coeff(rng), k = coeff(rng);
    LinExpr e = LinExpr::atom(a).scaled(Rational(c1)) +
                LinExpr::atom(b).scaled(Rational(c2)) + LinExpr(Rational(k));
    // Assert e == 0 and e != 0 together: always Unsat.
    solver.add(Constraint{e, Rel::Eq});
    solver.add(Constraint{e, Rel::Ne});
    EXPECT_EQ(solver.check(), CheckResult::Unsat);
  }
}

TEST(AtomTable, InterningIsStructural) {
  AtomTable atoms;
  AtomId a1 = atoms.internVar("x", 1, false);
  AtomId a2 = atoms.internVar("x", 1, false);
  AtomId a3 = atoms.internVar("x", 2, false);
  AtomId a4 = atoms.internVar("x", 1, true);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
  EXPECT_NE(a1, a4);

  AtomId u1 = atoms.internUF("f", {LinExpr::atom(a1)});
  AtomId u2 = atoms.internUF("f", {LinExpr::atom(a2)});
  AtomId u3 = atoms.internUF("f", {LinExpr::atom(a3)});
  EXPECT_EQ(u1, u2);
  EXPECT_NE(u1, u3);
}

TEST(AtomTable, RenderIsReadable) {
  AtomTable atoms;
  AtomId i = atoms.internVar("i", 0, false);
  AtomId ci = atoms.internUF("c@0", {LinExpr::atom(i)});
  LinExpr e = LinExpr::atom(ci) + LinExpr(Rational(7));
  std::string s = atoms.render(e);
  EXPECT_NE(s.find("c@0"), std::string::npos);
  EXPECT_NE(s.find("i_0"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
}

// -------------------------------------------------- stack discipline

TEST_F(SolverTest, PopWithoutPushThrows) {
  solver.push();
  solver.pop();
  EXPECT_THROW(solver.pop(), Error);
}

TEST_F(SolverTest, PopUnderflowLeavesAssertionsIntact) {
  solver.add(Constraint::ne(LinExpr::atom(i), LinExpr::atom(ip)));
  EXPECT_THROW(solver.pop(), Error);
  EXPECT_EQ(solver.assertionCount(), 1u);
  EXPECT_EQ(solver.check(), CheckResult::Sat);
}

// -------------------------------------------------- Unknown paths

TEST_F(SolverTest, MultiAtomInequalityIsUnknown) {
  // i + i' <= 3 leaves a multi-atom residue the interval tracker cannot
  // decide: the verdict must degrade to Unknown, never to Sat.
  solver.add(Constraint::le(LinExpr::atom(i) + LinExpr::atom(ip),
                            LinExpr(Rational(3))));
  EXPECT_EQ(solver.check(), CheckResult::Unknown);
}

TEST_F(SolverTest, UndecidedLeStillDetectsIntervalConflicts) {
  // The undecided multi-atom Le must not mask a decidable single-atom
  // interval conflict elsewhere on the stack.
  solver.add(Constraint::le(LinExpr::atom(i) + LinExpr::atom(ip),
                            LinExpr(Rational(3))));
  solver.add(Constraint::le(LinExpr(Rational(5)), LinExpr::atom(i)));
  solver.add(Constraint::le(LinExpr::atom(i), LinExpr(Rational(4))));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
}

// -------------------------------------------------- Stats counters

TEST_F(SolverTest, VerdictCacheCountsHits) {
  solver.add(Constraint::ne(LinExpr::atom(i), LinExpr::atom(ip)));
  EXPECT_EQ(solver.check(), CheckResult::Sat);
  EXPECT_EQ(solver.stats().cacheHits, 0);
  EXPECT_EQ(solver.check(), CheckResult::Sat);
  EXPECT_EQ(solver.stats().cacheHits, 1);
  EXPECT_EQ(solver.stats().checks, 2);

  // A different stack misses; an order-permuted copy of a seen stack hits.
  solver.push();
  solver.add(Constraint::eq(LinExpr::atom(i), LinExpr(Rational(0))));
  EXPECT_EQ(solver.check(), CheckResult::Sat);
  EXPECT_EQ(solver.stats().cacheHits, 1);
  solver.pop();
}

TEST_F(SolverTest, ReduceMemoServesThePinnedIntervalPass) {
  // 0 <= i <= 0 pins i to a point and i != 0 excludes it: the verdict is
  // Unsat, reached in the pinned-interval pass that reuses the memoized
  // Ne residues (reduceMemoHits) instead of reducing them again.
  solver.add(Constraint::ne(LinExpr::atom(i), LinExpr::atom(ip)));
  solver.add(Constraint::le(LinExpr(Rational(0)), LinExpr::atom(i)));
  solver.add(Constraint::le(LinExpr::atom(i), LinExpr(Rational(0))));
  solver.add(Constraint::ne(LinExpr::atom(i), LinExpr(Rational(0))));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
  EXPECT_GT(solver.stats().reduceMemoHits, 0);
  EXPECT_GT(solver.stats().reduceCalls, 0);

  // The cached re-check must not re-reduce anything.
  long long reduceCalls = solver.stats().reduceCalls;
  long long memoHits = solver.stats().reduceMemoHits;
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
  EXPECT_EQ(solver.stats().reduceCalls, reduceCalls);
  EXPECT_EQ(solver.stats().reduceMemoHits, memoHits);
}

// -------------------------------------------- fast-path tier-1 deciders
//
// Each tier-1 decider on a hand-built conjunction: decideFast must name
// the decider, the full solver must agree (exactness), and a Solver with
// the fast path enabled must report the check's tier.

class FastPathTier1Test : public SolverTest {
 protected:
  // decideFast on `stack` plus cross-checks: the pure-SMT verdict equals
  // `expect`, and a fast-pathed solver reaches the same verdict.
  FastDecision decideAndCrossCheck(const std::vector<Constraint>& stack,
                                   CheckResult expect) {
    Solver pure(atoms);  // FastPathMode::Off by default
    Solver fast(atoms);
    fast.setFastPathMode(FastPathMode::Full);
    for (const auto& c : stack) {
      pure.add(c);
      fast.add(c);
    }
    EXPECT_EQ(pure.check(), expect);
    EXPECT_EQ(fast.check(), expect);
    lastFastTier = fast.lastCheckTier();
    return decideFast(atoms, stack, FastPathMode::Full);
  }
  int lastFastTier = 2;
};

TEST_F(FastPathTier1Test, GcdDivisibilitySeparates) {
  // 2i + 4i' = 1 has no integer solution: gcd(2, 4) = 2 does not divide 1.
  std::vector<Constraint> stack = {
      Constraint::eq(LinExpr::atom(i, Rational(2)) +
                         LinExpr::atom(ip, Rational(4)),
                     LinExpr(Rational(1)))};
  FastDecision d = decideAndCrossCheck(stack, CheckResult::Unsat);
  EXPECT_EQ(d.verdict, FastVerdict::Disjoint);
  EXPECT_EQ(d.tier, 1);
  EXPECT_EQ(d.decider, "t1-gcd");
  EXPECT_NE(d.justification.find("gcd"), std::string::npos);
  EXPECT_EQ(lastFastTier, 1);
}

TEST_F(FastPathTier1Test, StrideLatticeFromLbmColoringFacts) {
  // The LBM checkerboard coloring yields lattice facts of the shape
  // 20q' - 20q + c = 0 between same-color cell bases (20 doubles per
  // cell). With 20 not dividing c the bases can never collide; the
  // stride-lattice decider must answer without the solver's HNF pass.
  AtomId q = atoms.internVar("q", 0, false);
  AtomId qp = atoms.internVar("q", 0, true);
  std::vector<Constraint> stack = {
      Constraint::ne(LinExpr::atom(qp), LinExpr::atom(q)),
      Constraint::eq(LinExpr::atom(qp, Rational(20)) -
                         LinExpr::atom(q, Rational(20)) +
                         LinExpr(Rational(7)),
                     LinExpr(Rational(0)))};
  FastDecision d = decideAndCrossCheck(stack, CheckResult::Unsat);
  EXPECT_EQ(d.verdict, FastVerdict::Disjoint);
  EXPECT_EQ(d.tier, 1);
  EXPECT_EQ(d.decider, "t1-stride");
  EXPECT_NE(d.justification.find("stride lattice"), std::string::npos);
  EXPECT_EQ(lastFastTier, 1);
}

TEST_F(FastPathTier1Test, RationalEqualityConflict) {
  // i = 3 and i = 5 are already rationally inconsistent.
  std::vector<Constraint> stack = {
      Constraint::eq(LinExpr::atom(i), LinExpr(Rational(3))),
      Constraint::eq(LinExpr::atom(i), LinExpr(Rational(5)))};
  FastDecision d = decideAndCrossCheck(stack, CheckResult::Unsat);
  EXPECT_EQ(d.verdict, FastVerdict::Disjoint);
  EXPECT_EQ(d.tier, 1);
  EXPECT_EQ(d.decider, "t1-eq-conflict");
  EXPECT_EQ(lastFastTier, 1);
}

TEST_F(FastPathTier1Test, EntailedDisequality) {
  // i = i' makes the standard i != i' probe base unsatisfiable.
  std::vector<Constraint> stack = {
      Constraint::eq(LinExpr::atom(i), LinExpr::atom(ip)),
      Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i))};
  FastDecision d = decideAndCrossCheck(stack, CheckResult::Unsat);
  EXPECT_EQ(d.verdict, FastVerdict::Disjoint);
  EXPECT_EQ(d.tier, 1);
  EXPECT_EQ(d.decider, "t1-ne-entailed");
  EXPECT_EQ(lastFastTier, 1);
}

TEST_F(FastPathTier1Test, IntervalSeparation) {
  // 7 <= i <= 5 is empty.
  std::vector<Constraint> stack = {
      Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)),
      Constraint::le(LinExpr::atom(i), LinExpr(Rational(5))),
      Constraint::le(LinExpr(Rational(7)), LinExpr::atom(i))};
  FastDecision d = decideAndCrossCheck(stack, CheckResult::Unsat);
  EXPECT_EQ(d.verdict, FastVerdict::Disjoint);
  EXPECT_EQ(d.tier, 1);
  EXPECT_EQ(d.decider, "t1-interval");
  EXPECT_EQ(lastFastTier, 1);
}

TEST_F(FastPathTier1Test, PointIntervalExcludedByDisequality) {
  // 4 <= i <= 4 pins i; i != 4 excludes the only point.
  std::vector<Constraint> stack = {
      Constraint::le(LinExpr::atom(i), LinExpr(Rational(4))),
      Constraint::le(LinExpr(Rational(4)), LinExpr::atom(i)),
      Constraint::ne(LinExpr::atom(i), LinExpr(Rational(4)))};
  FastDecision d = decideAndCrossCheck(stack, CheckResult::Unsat);
  EXPECT_EQ(d.verdict, FastVerdict::Disjoint);
  EXPECT_EQ(d.tier, 1);
  EXPECT_EQ(d.decider, "t1-interval");
  EXPECT_EQ(lastFastTier, 1);
}

TEST_F(FastPathTier1Test, BoundFactsSeparatingInOneDimensionOnly) {
  // Regression: a 2-D access whose range facts separate only in the first
  // dimension. 0 <= i <= 10 and 20 <= j <= 30 separate; the second
  // dimension's 0 <= k, l <= 30 do not. Probing the separating dimension
  // must decide via the interval decider; probing the overlapping one
  // must fall through to the solver, which finds a collision.
  AtomId j = atoms.internVar("j", 0, true);
  AtomId k = atoms.internVar("k", 0, false);
  AtomId l = atoms.internVar("l", 0, true);
  std::vector<Constraint> facts = {
      Constraint::le(LinExpr(Rational(0)), LinExpr::atom(i)),
      Constraint::le(LinExpr::atom(i), LinExpr(Rational(10))),
      Constraint::le(LinExpr(Rational(20)), LinExpr::atom(j)),
      Constraint::le(LinExpr::atom(j), LinExpr(Rational(30))),
      Constraint::le(LinExpr(Rational(0)), LinExpr::atom(k)),
      Constraint::le(LinExpr::atom(k), LinExpr(Rational(30))),
      Constraint::le(LinExpr(Rational(0)), LinExpr::atom(l)),
      Constraint::le(LinExpr::atom(l), LinExpr(Rational(30)))};

  std::vector<Constraint> separating = facts;
  separating.push_back(Constraint::eq(LinExpr::atom(i), LinExpr::atom(j)));
  FastDecision d = decideAndCrossCheck(separating, CheckResult::Unsat);
  EXPECT_EQ(d.verdict, FastVerdict::Disjoint);
  EXPECT_EQ(d.decider, "t1-interval");
  EXPECT_EQ(lastFastTier, 1);

  std::vector<Constraint> overlapping = facts;
  overlapping.push_back(Constraint::eq(LinExpr::atom(k), LinExpr::atom(l)));
  d = decideAndCrossCheck(overlapping, CheckResult::Sat);
  EXPECT_EQ(d.verdict, FastVerdict::Unknown);
  EXPECT_EQ(d.tier, 2);
  EXPECT_EQ(lastFastTier, 2);
}

TEST_F(FastPathTier1Test, UfAtomsDisableTheIntervalDecider) {
  // An interval conflict in the presence of an uninterpreted read must
  // stay Unknown at the fast path: congruence merges could reshape Le
  // residues, so only solve() may claim the verdict (still Unsat here —
  // exactness allows falling through, never disagreeing).
  AtomId ci = atoms.internUF("c", {LinExpr::atom(i)});
  AtomId cip = atoms.internUF("c", {LinExpr::atom(ip)});
  std::vector<Constraint> stack = {
      Constraint::ne(LinExpr::atom(cip), LinExpr::atom(ci)),
      Constraint::le(LinExpr::atom(i), LinExpr(Rational(5))),
      Constraint::le(LinExpr(Rational(7)), LinExpr::atom(i))};
  FastDecision d = decideAndCrossCheck(stack, CheckResult::Unsat);
  EXPECT_EQ(d.verdict, FastVerdict::Unknown);
  EXPECT_EQ(lastFastTier, 2);
}

// -------------------------------------------------- model extraction

TEST_F(SolverTest, ModelSatisfiesEqualitiesAndBounds) {
  // i' = i + 3 with i >= 2: any returned model must lie on the line and
  // inside the half-space.
  solver.add(Constraint::eq(LinExpr::atom(ip),
                            LinExpr::atom(i) + LinExpr(Rational(3))));
  solver.add(Constraint::le(LinExpr(Rational(2)), LinExpr::atom(i)));
  auto m = solver.model();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->at(ip), m->at(i) + 3);
  EXPECT_GE(m->at(i), 2);
  EXPECT_EQ(solver.stats().modelSearches, 1);
  EXPECT_EQ(solver.stats().modelsFound, 1);
}

TEST_F(SolverTest, ModelRespectsDisequalities) {
  solver.add(Constraint::ne(LinExpr::atom(i), LinExpr::atom(ip)));
  solver.add(Constraint::ne(LinExpr::atom(i), LinExpr(Rational(0))));
  auto m = solver.model();
  ASSERT_TRUE(m.has_value());
  EXPECT_NE(m->at(i), m->at(ip));
  EXPECT_NE(m->at(i), 0);
}

TEST_F(SolverTest, NoModelForUnsatConjunction) {
  // 2i = 1 has no integer solution; model() must not fabricate one.
  solver.add(Constraint::eq(LinExpr::atom(i).scaled(Rational(2)),
                            LinExpr(Rational(1))));
  EXPECT_FALSE(solver.model().has_value());
  EXPECT_EQ(solver.stats().modelsFound, 0);
}

TEST_F(SolverTest, ModelFindsStrideCongruenceWitness) {
  // i and i' on the lattice 1 + 2Z with i == i' + 2 and i != i' — the
  // witness the race checker needs for a stride-2 loop writing one stride
  // behind: two distinct iterations, indices colliding.
  AtomId q = atoms.internVar("q", 0, false);
  AtomId qp = atoms.internVar("q", 0, true);
  solver.add(Constraint::eq(
      LinExpr::atom(i),
      LinExpr::atom(q).scaled(Rational(2)) + LinExpr(Rational(1))));
  solver.add(Constraint::eq(
      LinExpr::atom(ip),
      LinExpr::atom(qp).scaled(Rational(2)) + LinExpr(Rational(1))));
  solver.add(Constraint::ne(LinExpr::atom(i), LinExpr::atom(ip)));
  solver.add(Constraint::eq(LinExpr::atom(i),
                            LinExpr::atom(ip) + LinExpr(Rational(2))));
  auto m = solver.model();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->at(i), m->at(ip) + 2);
  EXPECT_EQ(m->at(i) % 2 == 0, false);
  EXPECT_EQ(m->at(qp) + 1, m->at(q));
}

TEST(SolverModel, EvaluateIsExact) {
  Model m{{0, 2}, {1, -5}};
  LinExpr e = LinExpr::atom(0).scaled(Rational(3)) + LinExpr::atom(1) +
              LinExpr(Rational(7));
  EXPECT_EQ(Solver::evaluate(e, m), Rational(8));
}

TEST(SolverModelProperty, ReturnedModelsSatisfyTheStack) {
  // model() self-verifies before returning; this re-verifies externally
  // over random stacks, and cross-checks "no model" answers against brute
  // force (a brute-force-infeasible stack must never yield a model).
  std::mt19937_64 rng(20260806);
  std::uniform_int_distribution<int> coeff(-3, 3);
  std::uniform_int_distribution<int> numCons(1, 5);
  std::uniform_int_distribution<int> relPick(0, 2);

  for (int trial = 0; trial < 200; ++trial) {
    AtomTable atoms;
    AtomId v[3] = {atoms.internVar("a", 0, false),
                   atoms.internVar("b", 0, false),
                   atoms.internVar("c", 0, false)};
    Solver solver(atoms);

    struct Con {
      int c[3];
      int k;
      Rel rel;
    };
    std::vector<Con> cons;
    int n = numCons(rng);
    for (int j = 0; j < n; ++j) {
      Con con{};
      LinExpr e;
      for (int q = 0; q < 3; ++q) {
        con.c[q] = coeff(rng);
        e.addTerm(v[q], Rational(con.c[q]));
      }
      con.k = coeff(rng);
      e.addConstant(Rational(con.k));
      con.rel = static_cast<Rel>(relPick(rng));
      cons.push_back(con);
      solver.add(Constraint{e, con.rel});
    }

    auto m = solver.model();
    if (m.has_value()) {
      // An atom whose coefficient is zero in every constraint never enters
      // the solver's universe and gets no assignment; any value works.
      auto at = [&](AtomId id) -> long long {
        auto it = m->find(id);
        return it == m->end() ? 0 : it->second;
      };
      for (const auto& con : cons) {
        long long val = con.c[0] * at(v[0]) + con.c[1] * at(v[1]) +
                        con.c[2] * at(v[2]) + con.k;
        if (con.rel == Rel::Eq)
          EXPECT_EQ(val, 0) << "trial " << trial;
        else if (con.rel == Rel::Ne)
          EXPECT_NE(val, 0) << "trial " << trial;
        else
          EXPECT_LE(val, 0) << "trial " << trial;
      }
    }
  }
}

// ------------------------------------------------ verdict cache & threading

// Regression for the scope-staleness hazard: a verdict computed inside a
// push()ed scope must never answer a check() made after the pop(). The
// cache key is the fingerprint of the FULL assertion stack, so the Unsat
// seen under the extra assertion and the Sat of the base scope are distinct
// entries — a cache that keyed on anything less would replay the stale
// Unsat here.
TEST_F(SolverTest, CacheNeverServesStaleScopedVerdict) {
  solver.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  ASSERT_EQ(solver.check(), CheckResult::Sat);

  solver.push();
  solver.add(Constraint::eq(LinExpr::atom(ip), LinExpr::atom(i)));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
  solver.pop();

  // Same solver, same base assertions as the first check: must be Sat
  // again (and IS allowed to be a cache hit — of the base entry).
  EXPECT_EQ(solver.check(), CheckResult::Sat);

  // Re-entering an identical scope is a legitimate hit on the scoped entry.
  long long hitsBefore = solver.stats().cacheHits;
  solver.push();
  solver.add(Constraint::eq(LinExpr::atom(ip), LinExpr::atom(i)));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
  solver.pop();
  EXPECT_EQ(solver.stats().cacheHits, hitsBefore + 1);
}

// The same property through a shared VerdictCache (the concurrent cache
// worker solvers attach during parallel exploitation).
TEST_F(SolverTest, SharedCacheNeverServesStaleScopedVerdict) {
  VerdictCache cache;
  solver.attachCache(&cache);
  solver.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  ASSERT_EQ(solver.check(), CheckResult::Sat);
  solver.push();
  solver.add(Constraint::eq(LinExpr::atom(ip), LinExpr::atom(i)));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
  solver.pop();
  EXPECT_EQ(solver.check(), CheckResult::Sat);

  // A second solver over the same AtomTable replays all three verdicts
  // from the shared cache without solving.
  Solver other(atoms);
  other.attachCache(&cache);
  other.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  EXPECT_EQ(other.check(), CheckResult::Sat);
  other.push();
  other.add(Constraint::eq(LinExpr::atom(ip), LinExpr::atom(i)));
  EXPECT_EQ(other.check(), CheckResult::Unsat);
  other.pop();
  EXPECT_EQ(other.check(), CheckResult::Sat);
  EXPECT_EQ(other.stats().cacheHits, 3);
}

// The stack fingerprint is insertion-order independent: the same set of
// constraints asserted in a different order is the same cache entry.
TEST_F(SolverTest, StackKeyIsOrderIndependent) {
  AtomId ci = atoms.internUF("c", {LinExpr::atom(i)});
  Solver a(atoms), b(atoms);
  a.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  a.add(Constraint::le(LinExpr::atom(ci), LinExpr(Rational(8))));
  b.add(Constraint::le(LinExpr::atom(ci), LinExpr(Rational(8))));
  b.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  EXPECT_EQ(a.stackKey(), b.stackKey());
}

// A VerdictCache is bound to the AtomTable of the first solver that
// attaches; keys are AtomId-based, so sharing across tables would alias
// unrelated constraints. The second attach must be rejected loudly.
TEST(VerdictCacheTest, RejectsSharingAcrossAtomTables) {
  AtomTable t1, t2;
  (void)t1.internVar("i", 0, false);
  (void)t2.internVar("j", 0, false);
  VerdictCache cache;
  Solver s1(t1);
  s1.attachCache(&cache);
  Solver s2(t2);
  EXPECT_THROW(s2.attachCache(&cache), Error);
  // Re-attaching a solver over the SAME table is fine.
  Solver s3(t1);
  s3.attachCache(&cache);
}

// Solvers are thread-confined: the first add/check binds the owner thread,
// any use from another thread throws, and reset() releases the binding so
// a pool can hand the instance to a different worker.
TEST_F(SolverTest, ThreadConfinementIsEnforcedAndResetReleases) {
  solver.add(Constraint::ne(LinExpr::atom(ip), LinExpr::atom(i)));
  ASSERT_EQ(solver.check(), CheckResult::Sat);

  bool threw = false;
  std::thread probe([&] {
    try {
      (void)solver.check();
    } catch (const Error&) {
      threw = true;
    }
  });
  probe.join();
  EXPECT_TRUE(threw) << "second thread must be rejected without a reset()";

  solver.reset();
  CheckResult fromWorker = CheckResult::Unknown;
  std::thread worker([&] {
    solver.add(Constraint::eq(LinExpr::atom(ip), LinExpr::atom(i)));
    fromWorker = solver.check();
  });
  worker.join();
  EXPECT_EQ(fromWorker, CheckResult::Sat);
}

// The shared cache itself is safe under concurrent store/lookup: hammer
// one cache from several threads over disjoint and overlapping keys.
TEST(VerdictCacheTest, ConcurrentStoresAndLookupsAreConsistent) {
  AtomTable table;
  std::vector<AtomId> vars;
  for (int v = 0; v < 8; ++v)
    vars.push_back(table.internVar("v" + std::to_string(v), 0, false));
  VerdictCache cache;
  Solver binder(table);
  binder.attachCache(&cache);

  std::vector<std::thread> threads;
  std::atomic<int> disagreements{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Solver s(table);
      s.attachCache(&cache);
      for (int round = 0; round < 50; ++round) {
        const int v = (t + round) % 8;
        s.push();
        // v == round is satisfiable on its own; v == round && v == round+1
        // is not.
        s.add(Constraint::eq(LinExpr::atom(vars[v]),
                             LinExpr(Rational(round % 4))));
        const CheckResult one = s.check();
        s.add(Constraint::eq(LinExpr::atom(vars[v]),
                             LinExpr(Rational(round % 4 + 1))));
        const CheckResult two = s.check();
        s.pop();
        if (one != CheckResult::Sat || two != CheckResult::Unsat)
          disagreements.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(disagreements.load(), 0);
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.size(), 0u);
}

}  // namespace
}  // namespace formad::smt
