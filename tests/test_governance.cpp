// Resource governance: solver step budgets, cooperative cancellation, and
// graceful degradation to atomic adjoints.
//
// The contract under test, end to end:
//   - budgets are deterministic (counted solver steps, never wall-clock),
//     so a budget-exhausted Unknown is a pure function of the conjunction;
//   - every governance outcome degrades toward safety: exhausted checks
//     and cancelled pairs keep atomic adjoints / undecided race pairs,
//     and the generated adjoint stays numerically correct;
//   - a budget-limited Unknown can never poison a larger-budget run
//     through the shared verdict cache;
//   - a task exception or fired deadline cancels the rest of a pool run
//     cooperatively — no hang, no half-merged state;
//   - with everything at its default (unlimited) setting the reports are
//     byte-identical to the pre-governance analyzer at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "driver/driver.h"
#include "exec/interp.h"
#include "formad/formad.h"
#include "helpers.h"
#include "kernels/stencil.h"
#include "smt/budget.h"
#include "smt/solver.h"
#include "support/cancel.h"
#include "support/diagnostics.h"
#include "support/pool.h"

namespace formad {
namespace {

using support::CancelToken;
using support::Cancelled;
using support::WorkPool;

// ------------------------------------------------------------ CancelToken

TEST(CancelToken, CancelSetsAndThrowHelperThrows) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.poll());
  t.throwIfCancelled();  // no-op while clear
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(t.poll());
  EXPECT_THROW(t.throwIfCancelled(), Cancelled);
}

TEST(CancelToken, NonPositiveDeadlineCancelsImmediately) {
  CancelToken zero, negative;
  zero.armDeadline(0);
  negative.armDeadline(-5);
  EXPECT_TRUE(zero.cancelled());
  EXPECT_TRUE(negative.cancelled());
}

TEST(CancelToken, DeadlineTripsOnPollAfterExpiry) {
  CancelToken t;
  t.armDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // cancelled() alone never reads the clock; poll() does and latches.
  EXPECT_TRUE(t.poll());
  EXPECT_TRUE(t.cancelled());

  CancelToken far;
  far.armDeadline(60000);
  EXPECT_FALSE(far.poll());
}

// -------------------------------------------------------------- StepBudget

TEST(StepBudget, ChargesUpToLimitThenThrows) {
  smt::StepBudget b;
  b.arm(5, nullptr);
  for (int k = 0; k < 5; ++k) b.charge();
  EXPECT_EQ(b.used(), 5);
  EXPECT_THROW(b.charge(), smt::StepLimitReached);
}

TEST(StepBudget, UnlimitedNeverThrows) {
  smt::StepBudget b;
  b.arm(0, nullptr);
  for (int k = 0; k < 100000; ++k) b.charge();
  EXPECT_EQ(b.used(), 100000);
}

TEST(StepBudget, PollsCancelTokenPeriodically) {
  CancelToken cancel;
  cancel.cancel();
  smt::StepBudget b;
  b.arm(0, &cancel);
  // The token is polled every few hundred steps, not per charge; an
  // unlimited budget with a fired token must still unwind promptly.
  EXPECT_THROW(
      {
        for (int k = 0; k < 100000; ++k) b.charge();
      },
      Cancelled);
}

// ------------------------------------------------------------ VerdictCache

TEST(VerdictCacheBudget, SufficiencyGuardSemantics) {
  using Entry = smt::VerdictCache::Entry;
  // Complete verdict that consumed 10 steps: serveable to any budget that
  // could have afforded the solve.
  Entry complete{smt::CheckResult::Unsat, 2, /*complete=*/true, /*steps=*/10};
  EXPECT_TRUE(smt::VerdictCache::sufficientFor(complete, 0));    // unlimited
  EXPECT_TRUE(smt::VerdictCache::sufficientFor(complete, 10));
  EXPECT_TRUE(smt::VerdictCache::sufficientFor(complete, 1000));
  EXPECT_FALSE(smt::VerdictCache::sufficientFor(complete, 9));

  // Exhausted at limit 10: any limit <= 10 exhausts too (steps are
  // deterministic), but a larger or unlimited budget must re-derive.
  Entry exhausted{smt::CheckResult::Unknown, 2, /*complete=*/false,
                  /*steps=*/10};
  EXPECT_TRUE(smt::VerdictCache::sufficientFor(exhausted, 10));
  EXPECT_TRUE(smt::VerdictCache::sufficientFor(exhausted, 5));
  EXPECT_FALSE(smt::VerdictCache::sufficientFor(exhausted, 11));
  EXPECT_FALSE(smt::VerdictCache::sufficientFor(exhausted, 0));  // unlimited
}

/// A conjunction whose full solve needs several pivot steps and is truly
/// Unsat: a = b = c = d with 4a == 10 has no integer solution.
void addChain(smt::Solver& s, const std::vector<smt::AtomId>& v) {
  using smt::Constraint;
  using smt::LinExpr;
  using smt::Rational;
  s.add(Constraint::eq(LinExpr::atom(v[0]), LinExpr::atom(v[1])));
  s.add(Constraint::eq(LinExpr::atom(v[1]), LinExpr::atom(v[2])));
  s.add(Constraint::eq(LinExpr::atom(v[2]), LinExpr::atom(v[3])));
  s.add(Constraint::eq(LinExpr::atom(v[0]) + LinExpr::atom(v[1]) +
                           LinExpr::atom(v[2]) + LinExpr::atom(v[3]),
                       LinExpr(Rational(10))));
}

TEST(VerdictCacheBudget, ExhaustedEntryNeverPoisonsLargerBudget) {
  smt::AtomTable atoms;
  std::vector<smt::AtomId> v;
  for (int k = 0; k < 4; ++k)
    v.push_back(atoms.internVar("v" + std::to_string(k), 0, false));
  smt::VerdictCache cache;

  // Starved solver: one step is not enough for the pivot chain.
  smt::Solver starved(atoms);
  starved.attachCache(&cache);
  starved.setStepBudget(1);
  addChain(starved, v);
  EXPECT_EQ(starved.check(), smt::CheckResult::Unknown);
  EXPECT_TRUE(starved.lastCheckBudgetExhausted());
  EXPECT_EQ(starved.stats().budgetExhausted, 1);

  // Unlimited solver over the same cache and conjunction: the exhausted
  // entry is budget-insufficient, so it re-derives the real verdict.
  smt::Solver full(atoms);
  full.attachCache(&cache);
  addChain(full, v);
  EXPECT_EQ(full.check(), smt::CheckResult::Unsat);
  EXPECT_FALSE(full.lastCheckBudgetExhausted());

  // A second starved solver may reuse the exhaustion record, and a second
  // unlimited solver now hits the upgraded complete verdict — either way
  // the answers match what each budget would derive on its own.
  smt::Solver starved2(atoms);
  starved2.attachCache(&cache);
  starved2.setStepBudget(1);
  addChain(starved2, v);
  EXPECT_EQ(starved2.check(), smt::CheckResult::Unknown);
  EXPECT_TRUE(starved2.lastCheckBudgetExhausted());

  smt::Solver full2(atoms);
  full2.attachCache(&cache);
  addChain(full2, v);
  EXPECT_EQ(full2.check(), smt::CheckResult::Unsat);
}

TEST(SolverBudget, PrivateCacheHonorsTheSameGuard) {
  smt::AtomTable atoms;
  std::vector<smt::AtomId> v;
  for (int k = 0; k < 4; ++k)
    v.push_back(atoms.internVar("v" + std::to_string(k), 0, false));

  // One solver, no shared cache: starve a check, then lift the budget.
  // The private verdict map must re-derive instead of replaying Unknown.
  smt::Solver s(atoms);
  s.setStepBudget(1);
  addChain(s, v);
  EXPECT_EQ(s.check(), smt::CheckResult::Unknown);
  EXPECT_TRUE(s.lastCheckBudgetExhausted());
  s.setStepBudget(0);
  EXPECT_EQ(s.check(), smt::CheckResult::Unsat);
  // And the upgraded complete entry now serves the unlimited re-check.
  EXPECT_EQ(s.check(), smt::CheckResult::Unsat);
}

// ---------------------------------------------------------------- WorkPool

TEST(WorkPoolCancel, FirstExceptionCancelsRestAtWidth4) {
  WorkPool pool(4);
  CancelToken cancel;
  std::atomic<size_t> executed{0};
  const size_t n = 64;
  bool threw = false;
  try {
    pool.run(
        n,
        [&](size_t task, int) {
          if (task == 0) throw std::runtime_error("task 0 failed");
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          executed.fetch_add(1);
        },
        &cancel);
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "task 0 failed");
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(cancel.cancelled()) << "the failure must fire the token";
  // Every non-throwing task either executed or was skipped — the skip
  // accounting is what lets callers degrade unfinished work conservatively.
  EXPECT_EQ(executed.load() + pool.lastRunSkipped(), n - 1);
  EXPECT_GT(pool.lastRunSkipped(), 0u)
      << "with 63 sleeping tasks on 4 workers, the abort must skip some";

  // The pool stays usable for the next run.
  std::atomic<size_t> after{0};
  pool.run(8, [&](size_t, int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8u);
  EXPECT_EQ(pool.lastRunSkipped(), 0u);
}

TEST(WorkPoolCancel, ExceptionAtWidth1StopsTheInlineLoop) {
  WorkPool pool(1);
  std::atomic<size_t> executed{0};
  EXPECT_THROW(pool.run(8,
                        [&](size_t task, int) {
                          if (task == 3) throw std::runtime_error("boom");
                          executed.fetch_add(1);
                        }),
               std::runtime_error);
  // The inline serial path unwinds at the throw: tasks 0..2 ran, nothing
  // after task 3 did.
  EXPECT_EQ(executed.load(), 3u);
}

TEST(WorkPoolCancel, PreCancelledTokenSkipsEveryTask) {
  for (int width : {1, 4}) {
    WorkPool pool(width);
    CancelToken cancel;
    cancel.cancel();
    std::atomic<size_t> executed{0};
    pool.run(
        16, [&](size_t, int) { executed.fetch_add(1); }, &cancel);
    EXPECT_EQ(executed.load(), 0u) << "width " << width;
    EXPECT_EQ(pool.lastRunSkipped(), 16u) << "width " << width;
  }
}

TEST(WorkPoolCancel, DeadlineTokenStopsALongRun) {
  WorkPool pool(4);
  CancelToken cancel;
  cancel.armDeadline(5);
  std::atomic<size_t> executed{0};
  pool.run(
      1000,
      [&](size_t, int) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1);
      },
      &cancel);
  // Liveness, not a precise count: the run returned (no hang) and the
  // deadline prevented the full grind through 1000 ms of work.
  EXPECT_EQ(executed.load() + pool.lastRunSkipped(), 1000u);
  EXPECT_GT(pool.lastRunSkipped(), 0u);
}

// ---------------------------------------------- degradation, end to end

driver::DriverOptions starvedOptions(long long budget) {
  driver::DriverOptions opts;
  opts.analysisThreads = 1;
  // The tiered fast paths answer stencil queries without solver steps, so
  // starve the full solver specifically.
  opts.fastpath = smt::FastPathMode::Off;
  opts.solverStepBudget = budget;
  return opts;
}

TEST(Degradation, ExhaustedBudgetMarksVariablesAtomicWithReason) {
  auto spec = kernels::stencilSpec(2);
  auto kernel = parser::parseKernel(spec.source);
  auto a = driver::analyze(*kernel, spec.independents, spec.dependents,
                           starvedOptions(1));
  EXPECT_GT(a.budgetExhaustedChecks(), 0);
  EXPECT_GT(a.degradedPairs(), 0);
  bool sawReason = false;
  for (const auto& r : a.regions) {
    // An exhausted consistency probe is Unknown, not Unsat: no
    // contradiction claim may appear under starvation.
    EXPECT_TRUE(r.knowledgeContradiction.empty());
    for (const auto& v : r.vars)
      if (!v.safe && v.unsafeReason == "step budget exhausted")
        sawReason = true;
  }
  EXPECT_TRUE(sawReason);

  // The unlimited analysis proves the same kernel fully safe — the budget
  // is the only thing in the way.
  auto full = driver::analyze(*kernel, spec.independents, spec.dependents,
                              starvedOptions(0));
  EXPECT_EQ(full.budgetExhaustedChecks(), 0);
  EXPECT_EQ(full.degradedPairs(), 0);
  for (const auto& r : full.regions)
    for (const auto& v : r.vars) EXPECT_TRUE(v.safe) << v.var;
}

TEST(Degradation, BudgetedVerdictsAreThreadCountInvariant) {
  auto spec = kernels::stencilSpec(2);
  auto kernel = parser::parseKernel(spec.source);
  std::string reference;
  for (int threads : {1, 2, 4}) {
    auto opts = starvedOptions(1);
    opts.analysisThreads = threads;
    auto a = driver::analyze(*kernel, spec.independents, spec.dependents,
                             opts);
    std::string report =
        core::describe(a, /*includeTiming=*/false) + core::describeTiers(a);
    if (reference.empty()) reference = report;
    EXPECT_EQ(report, reference) << "threads " << threads;
  }
}

/// Gradients of the harness kernel computed by the adjoint `dopts` builds,
/// executed with `engine`; the adjoint seed is deterministic so runs are
/// comparable across modes and engines.
std::map<std::string, std::vector<double>> gradientsWith(
    const testing::Harness& h, const driver::DriverOptions& dopts,
    exec::ExecEngine engine) {
  auto primal = h.parse();
  auto dr = driver::differentiate(*primal, h.spec.independents,
                                  h.spec.dependents, dopts);
  exec::Inputs aio;
  h.bind(aio);
  for (const auto& [p, pb] : dr.adjointParams) {
    const exec::ArrayValue& src = aio.array(p);
    std::vector<long long> dims;
    for (int k = 0; k < src.rank(); ++k) dims.push_back(src.dim(k));
    exec::ArrayValue& a = aio.bindArray(pb, exec::ArrayValue::reals(dims));
    if (std::find(h.spec.dependents.begin(), h.spec.dependents.end(), p) !=
        h.spec.dependents.end()) {
      auto& yb = a.realData();
      for (size_t k = 0; k < yb.size(); ++k)
        yb[k] = 0.25 + 0.001 * static_cast<double>(k % 97);
    }
  }
  exec::Executor aex(*dr.adjoint);
  exec::ExecOptions eopts;
  eopts.engine = engine;
  exec::ExecStats st = aex.run(aio, eopts);
  EXPECT_TRUE(st.tapeDrained);
  std::map<std::string, std::vector<double>> out;
  for (const auto& [p, pb] : dr.adjointParams)
    out[p] = aio.array(pb).realData();
  return out;
}

TEST(Degradation, StarvedAdjointStaysNumericallyCorrectOnBothEngines) {
  testing::Harness h = testing::stencilHarness(2, 64, 7);

  // Reference: the all-atomic adjoint, correct by construction.
  driver::DriverOptions atomicOpts;
  atomicOpts.mode = driver::AdjointMode::Atomic;
  auto reference =
      gradientsWith(h, atomicOpts, exec::ExecEngine::TreeWalk);

  // Candidate: FormAD under a starved budget — every degraded pair falls
  // back to an atomic guard, so the derivatives must match exactly.
  auto starved = starvedOptions(1);
  starved.mode = driver::AdjointMode::FormAD;
  for (auto engine : {exec::ExecEngine::TreeWalk, exec::ExecEngine::Bytecode}) {
    auto got = gradientsWith(h, starved, engine);
    ASSERT_EQ(got.size(), reference.size());
    for (const auto& [name, want] : reference) {
      ASSERT_TRUE(got.count(name)) << name;
      const auto& have = got.at(name);
      ASSERT_EQ(have.size(), want.size()) << name;
      for (size_t k = 0; k < want.size(); ++k)
        EXPECT_LT(testing::relDiff(have[k], want[k]), 1e-12)
            << name << "[" << k << "]";
    }
  }
}

TEST(Degradation, StarvedDifferentiateWarnsButBuildsTheAdjoint) {
  auto spec = kernels::stencilSpec(2);
  auto kernel = parser::parseKernel(spec.source);
  auto dopts = starvedOptions(1);
  dopts.mode = driver::AdjointMode::FormAD;
  auto dr = driver::differentiate(*kernel, spec.independents, spec.dependents,
                                  dopts);
  ASSERT_NE(dr.adjoint, nullptr);
  bool warned = false;
  for (const auto& w : dr.warnings)
    if (w.find("degraded under resource limits") != std::string::npos)
      warned = true;
  EXPECT_TRUE(warned) << "graceful degradation must never be silent";
}

TEST(Degradation, TinyDeadlineReturnsPromptlyAndSoundly) {
  auto spec = kernels::stencilSpec(8);
  auto kernel = parser::parseKernel(spec.source);
  driver::DriverOptions opts;
  opts.analysisThreads = 4;
  opts.analysisDeadlineMs = 1;
  // Liveness contract only: the analysis returns (instead of hanging) and
  // whatever it could not finish is conservatively unsafe with a reason.
  auto a = driver::analyze(*kernel, spec.independents, spec.dependents, opts);
  for (const auto& r : a.regions)
    for (const auto& v : r.vars)
      if (!v.safe) EXPECT_FALSE(v.unsafeReason.empty());
}

// ---------------------------------------------------------- fault injection

TEST(FaultInjection, ForcedUnknownDegradesLikeBudgetExhaustion) {
  auto spec = kernels::stencilSpec(2);
  auto kernel = parser::parseKernel(spec.source);
  smt::FaultInject fault;
  fault.unknownAtCheck = 1;
  driver::DriverOptions opts;
  opts.analysisThreads = 1;
  opts.faultInject = &fault;
  auto a = driver::analyze(*kernel, spec.independents, spec.dependents, opts);
  EXPECT_GT(a.budgetExhaustedChecks(), 0)
      << "the injected Unknown must surface in the governance counters";
  EXPECT_GT(fault.checksSeen.load(), 0);
}

TEST(FaultInjection, ForcedThrowPropagatesWithoutHangingThePool) {
  auto spec = kernels::stencilSpec(2);
  auto kernel = parser::parseKernel(spec.source);
  smt::FaultInject fault;
  fault.throwAtCheck = 3;
  driver::DriverOptions opts;
  opts.mode = driver::AdjointMode::FormAD;
  opts.analysisThreads = 4;  // the interesting case: workers must unwind
  opts.faultInject = &fault;
  try {
    auto dr = driver::differentiate(*kernel, spec.independents,
                                    spec.dependents, opts);
    FAIL() << "the injected fault must propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected solver fault"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- default identity

TEST(DefaultGovernance, UnlimitedBudgetReportsAreByteIdenticalToDefaults) {
  auto spec = kernels::stencilSpec(2);
  auto kernel = parser::parseKernel(spec.source);
  for (int threads : {1, 2, 4, 8}) {
    auto base = driver::analyze(*kernel, spec.independents, spec.dependents,
                                threads);
    driver::DriverOptions opts;
    opts.analysisThreads = threads;
    opts.solverStepBudget = 0;
    opts.analysisDeadlineMs = 0;
    auto gov =
        driver::analyze(*kernel, spec.independents, spec.dependents, opts);
    EXPECT_EQ(core::describe(base, false) + core::describeTiers(base),
              core::describe(gov, false) + core::describeTiers(gov))
        << "threads " << threads;
    EXPECT_EQ(gov.budgetExhaustedChecks(), 0);
    EXPECT_EQ(gov.degradedPairs(), 0);
  }
}

}  // namespace
}  // namespace formad
