// Integration tests: multi-step (time-loop) adjoints with checkpointing,
// the omit-tape-free-primal-sweep variant, and CLI-style program flows.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/checkpoint.h"
#include "helpers.h"
#include "ir/printer.h"

namespace formad::testing {
namespace {

using driver::AdjointMode;
using exec::ArrayValue;
using exec::ExecOptions;
using exec::Inputs;

/// A damped diffusion step: u <- u + dt * (u_{i-1} - 2 u_i + u_{i+1})
/// written as a compact parallel kernel over a single state array.
const char* kHeatStep = R"(
kernel heat(n: int in, dt: real in, u: real[] inout, tmp: real[] inout) {
  parallel for i = 1 : n - 2 {
    tmp[i] = u[i] + dt * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
  }
  parallel for i2 = 1 : n - 2 {
    u[i2] = tmp[i2];
  }
}
)";

double heatObjective(long long n, double dt, int steps,
                     const std::vector<double>& u0) {
  auto primal = parser::parseKernel(kHeatStep);
  exec::Executor ex(*primal);
  Inputs io;
  io.bindInt("n", n);
  io.bindReal("dt", dt);
  io.bindArray("u", ArrayValue::reals({n})).realData() = u0;
  io.bindArray("tmp", ArrayValue::reals({n}));
  for (int s = 0; s < steps; ++s) (void)ex.run(io);
  double J = 0;
  const auto& u = io.array("u").realData();
  for (long long i = 0; i < n; ++i)
    J += 0.1 * static_cast<double>(i % 5) * u[static_cast<size_t>(i)];
  return J;
}

class TimeLoop : public ::testing::TestWithParam<int> {};

TEST_P(TimeLoop, CheckpointedAdjointMatchesFiniteDifferences) {
  const long long n = 40;
  const double dt = 0.2;
  const int steps = 13;
  const int snapshotEvery = GetParam();  // 0 = auto sqrt

  auto primal = parser::parseKernel(kHeatStep);
  auto dr = driver::differentiate(*primal, {"u"}, {"u"}, AdjointMode::FormAD);

  std::vector<double> u0(static_cast<size_t>(n));
  for (long long i = 0; i < n; ++i)
    u0[static_cast<size_t>(i)] = std::sin(0.3 * static_cast<double>(i));

  Inputs io;
  io.bindInt("n", n);
  io.bindReal("dt", dt);
  io.bindArray("u", ArrayValue::reals({n})).realData() = u0;
  io.bindArray("tmp", ArrayValue::reals({n}));
  auto& ub = io.bindArray("ub", ArrayValue::reals({n}));
  for (long long i = 0; i < n; ++i)
    ub.realAt(i) = 0.1 * static_cast<double>(i % 5);  // dJ/du(final)
  io.bindArray("tmpb", ArrayValue::reals({n}));

  exec::TimeLoopOptions opts;
  opts.steps = steps;
  opts.snapshotEvery = snapshotEvery;
  auto stats = exec::runTimeLoopAdjoint(*primal, *dr.adjoint, io, {"u", "tmp"},
                                        opts);
  EXPECT_EQ(stats.adjointStepsRun, steps);
  EXPECT_GE(stats.primalStepsRun, steps);

  // dJ/du0 via central differences at a few probes.
  for (long long probe : {1LL, 7LL, 20LL, n - 2}) {
    auto up = u0;
    up[static_cast<size_t>(probe)] += 1e-6;
    auto um = u0;
    um[static_cast<size_t>(probe)] -= 1e-6;
    double fd = (heatObjective(n, dt, steps, up) -
                 heatObjective(n, dt, steps, um)) /
                2e-6;
    EXPECT_NEAR(io.array("ub").realAt(probe), fd, 1e-6)
        << "probe " << probe << ", snapshotEvery " << snapshotEvery;
  }
}

INSTANTIATE_TEST_SUITE_P(SnapshotSpacing, TimeLoop,
                         ::testing::Values(0, 1, 3, 13));

TEST(TimeLoop, SnapshotAccountingMatchesSpacing) {
  const long long n = 16;
  auto primal = parser::parseKernel(kHeatStep);
  auto dr = driver::differentiate(*primal, {"u"}, {"u"}, AdjointMode::Serial);

  auto makeIo = [&](Inputs& io) {
    io.bindInt("n", n);
    io.bindReal("dt", 0.1);
    io.bindArray("u", ArrayValue::reals({n})).fill(1.0);
    io.bindArray("tmp", ArrayValue::reals({n}));
    io.bindArray("ub", ArrayValue::reals({n})).fill(1.0);
    io.bindArray("tmpb", ArrayValue::reals({n}));
  };

  // k = 1: snapshot every step, no recomputation.
  {
    Inputs io;
    makeIo(io);
    exec::TimeLoopOptions o;
    o.steps = 9;
    o.snapshotEvery = 1;
    auto st = exec::runTimeLoopAdjoint(*primal, *dr.adjoint, io, {"u", "tmp"}, o);
    EXPECT_EQ(st.snapshotsTaken, 9);
    EXPECT_EQ(st.primalStepsRun, 9);  // forward only
  }
  // k = 9: one snapshot, maximal recomputation.
  {
    Inputs io;
    makeIo(io);
    exec::TimeLoopOptions o;
    o.steps = 9;
    o.snapshotEvery = 9;
    auto st = exec::runTimeLoopAdjoint(*primal, *dr.adjoint, io, {"u", "tmp"}, o);
    EXPECT_EQ(st.snapshotsTaken, 1);
    EXPECT_EQ(st.primalStepsRun, 9 + 8 * 9 / 2);  // 9 fwd + 0+1+..+8 replays
  }
}

TEST(TimeLoop, AllSnapshotSpacingsAgree) {
  const long long n = 24;
  auto primal = parser::parseKernel(kHeatStep);
  auto dr = driver::differentiate(*primal, {"u"}, {"u"}, AdjointMode::FormAD);

  std::vector<double> ref;
  for (int k : {1, 2, 5, 11}) {
    Inputs io;
    io.bindInt("n", n);
    io.bindReal("dt", 0.15);
    auto& u = io.bindArray("u", ArrayValue::reals({n}));
    for (long long i = 0; i < n; ++i) u.realAt(i) = 0.05 * static_cast<double>(i);
    io.bindArray("tmp", ArrayValue::reals({n}));
    io.bindArray("ub", ArrayValue::reals({n})).fill(1.0);
    io.bindArray("tmpb", ArrayValue::reals({n}));
    exec::TimeLoopOptions o;
    o.steps = 11;
    o.snapshotEvery = k;
    (void)exec::runTimeLoopAdjoint(*primal, *dr.adjoint, io, {"u", "tmp"}, o);
    if (ref.empty()) {
      ref = io.array("ub").realData();
    } else {
      const auto& got = io.array("ub").realData();
      for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_DOUBLE_EQ(got[i], ref[i]) << "k=" << k << " entry " << i;
    }
  }
}

// --- the omit-tape-free-primal-sweep variant ---

TEST(OmitPrimalSweep, GradientsUnchangedForTapeFreeKernels) {
  for (auto mk : {+[] { return stencilHarness(1, 300, 3); },
                  +[] { return greenGaussHarness(1500, 3); },
                  +[] { return indirectHarness(128, 3); }}) {
    Harness h = mk();
    auto k = h.parse();
    auto normal = driver::differentiate(*k, h.spec.independents,
                                        h.spec.dependents, AdjointMode::FormAD,
                                        /*omit=*/false);
    auto lean = driver::differentiate(*k, h.spec.independents,
                                      h.spec.dependents, AdjointMode::FormAD,
                                      /*omit=*/true);
    // The lean variant must contain no primal statements writing the
    // dependents' values... at minimum it must be strictly smaller.
    EXPECT_LT(ir::printKernel(*lean.adjoint).size(),
              ir::printKernel(*normal.adjoint).size());

    // Gradients agree.
    auto run = [&](const ir::Kernel& kernel) {
      Inputs io;
      h.bind(io);
      for (const auto& [p, pb] : normal.adjointParams) {
        const auto& a = io.array(p);
        std::vector<long long> dims;
        for (int d = 0; d < a.rank(); ++d) dims.push_back(a.dim(d));
        auto& b = io.bindArray(pb, ArrayValue::reals(dims));
        if (std::find(h.spec.dependents.begin(), h.spec.dependents.end(), p) !=
            h.spec.dependents.end())
          b.fill(1.0);
      }
      exec::Executor ex(kernel);
      (void)ex.run(io);
      std::map<std::string, std::vector<double>> grads;
      for (const auto& ind : h.spec.independents)
        grads[ind] = io.array(normal.adjointParams.at(ind)).realData();
      return grads;
    };
    auto g1 = run(*normal.adjoint);
    auto g2 = run(*lean.adjoint);
    for (const auto& [name, vals] : g1) {
      const auto& other = g2.at(name);
      ASSERT_EQ(vals.size(), other.size());
      for (size_t i = 0; i < vals.size(); ++i)
        EXPECT_DOUBLE_EQ(vals[i], other[i]) << h.spec.name << " " << name;
    }
  }
}

TEST(OmitPrimalSweep, KeptWhenTapeIsNeeded) {
  // GFMC needs its tape: the forward sweep must survive the option.
  Harness h = gfmcHarness(false, 3);
  auto k = h.parse();
  auto lean = driver::differentiate(*k, h.spec.independents, h.spec.dependents,
                                    AdjointMode::FormAD, /*omit=*/true);
  std::string printed = ir::printKernel(*lean.adjoint);
  EXPECT_NE(printed.find("PUSH_real"), std::string::npos);
  EXPECT_LT(dotProductError(h, AdjointMode::FormAD,
                            ExecOptions{exec::ExecMode::Serial, 1}, 9),
            1e-9);
}

}  // namespace
}  // namespace formad::testing
