// Differential validation of the bytecode VM against the tree-walking
// interpreter: bit-identical primal outputs and gradients (up to FP
// accumulation order for atomic/reduction merges under real OpenMP),
// identical Profile-mode operation counts, across the paper's kernels and
// every safeguard mode.
#include <gtest/gtest.h>

#include "driver/driver.h"
#include "exec/bytecode.h"
#include "exec/kernel_info.h"
#include "helpers.h"

namespace formad::testing {
namespace {

using driver::AdjointMode;
using exec::ArrayValue;
using exec::ExecEngine;
using exec::ExecMode;
using exec::ExecOptions;
using exec::Executor;
using exec::Inputs;
using exec::LoopProfile;
using exec::OpCounts;
using exec::RunProfile;

constexpr ExecOptions kTreeSerial{ExecMode::Serial, 1, ExecEngine::TreeWalk};
constexpr ExecOptions kByteSerial{ExecMode::Serial, 1, ExecEngine::Bytecode};

const AdjointMode kSafeguards[] = {AdjointMode::Serial, AdjointMode::Atomic,
                                   AdjointMode::Reduction, AdjointMode::FormAD};

std::vector<Harness> allKernels() {
  std::vector<Harness> hs;
  hs.push_back(stencilHarness(2, 300, 11));
  hs.push_back(gfmcHarness(false, 21));
  hs.push_back(gfmcHarness(true, 22));
  hs.push_back(greenGaussHarness(200, 31));
  hs.push_back(indirectHarness(400, 41));
  hs.push_back(lbmHarness(51));
  return hs;
}

/// Primal run under `opts`; returns every dependent's flattened values and
/// the run's stats through the out-parameter.
std::map<std::string, std::vector<double>> primalOutputs(
    const Harness& h, const ExecOptions& opts, exec::ExecStats* stats) {
  auto kernel = h.parse();
  Executor ex(*kernel);
  Inputs io;
  h.bind(io);
  exec::ExecStats st = ex.run(io, opts);
  if (stats != nullptr) *stats = std::move(st);
  std::map<std::string, std::vector<double>> out;
  for (const auto& dep : h.spec.dependents) out[dep] = io.array(dep).realData();
  return out;
}

/// Profile of the `mode` adjoint of `h` executed on `eng`.
exec::ExecStats adjointProfile(const Harness& h, AdjointMode mode,
                               ExecEngine eng) {
  auto primal = h.parse();
  auto dr = driver::differentiate(*primal, h.spec.independents,
                                  h.spec.dependents, mode);
  Inputs io;
  h.bind(io);
  for (const auto& [p, pb] : dr.adjointParams) {
    const ArrayValue& a = io.array(p);
    std::vector<long long> dims;
    for (int k = 0; k < a.rank(); ++k) dims.push_back(a.dim(k));
    io.bindArray(pb, ArrayValue::reals(dims));
  }
  Executor ex(*dr.adjoint);
  ExecOptions opts;
  opts.mode = ExecMode::Profile;
  opts.engine = eng;
  return ex.run(io, opts);
}

void expectCountsEq(const OpCounts& a, const OpCounts& b,
                    const std::string& where) {
  EXPECT_EQ(a.flops, b.flops) << where;
  EXPECT_EQ(a.intops, b.intops) << where;
  EXPECT_EQ(a.seqBytes, b.seqBytes) << where;
  EXPECT_EQ(a.randBytes, b.randBytes) << where;
  EXPECT_EQ(a.atomicOps, b.atomicOps) << where;
  EXPECT_EQ(a.tapeBytes, b.tapeBytes) << where;
}

void expectGradientsEq(
    const std::map<std::string, std::vector<double>>& ref,
    const std::map<std::string, std::vector<double>>& got,
    const std::string& where) {
  ASSERT_EQ(ref.size(), got.size()) << where;
  for (const auto& [name, rv] : ref) {
    ASSERT_TRUE(got.count(name)) << where << " missing " << name;
    const auto& gv = got.at(name);
    ASSERT_EQ(rv.size(), gv.size()) << where << " " << name;
    for (size_t i = 0; i < rv.size(); ++i)
      EXPECT_EQ(rv[i], gv[i]) << where << " " << name << "[" << i << "]";
  }
}

TEST(BytecodeDiff, PrimalBitIdenticalSerial) {
  for (const Harness& h : allKernels()) {
    exec::ExecStats ts, bs;
    auto tree = primalOutputs(h, kTreeSerial, &ts);
    auto byte = primalOutputs(h, kByteSerial, &bs);
    expectGradientsEq(tree, byte, h.spec.name + " primal");
    EXPECT_EQ(ts.tapePeakBytes, bs.tapePeakBytes) << h.spec.name;
  }
}

TEST(BytecodeDiff, GradientsBitIdenticalSerial) {
  for (const Harness& h : allKernels()) {
    for (AdjointMode mode : kSafeguards) {
      auto tree = adjointGradients(h, mode, kTreeSerial, 7);
      auto byte = adjointGradients(h, mode, kByteSerial, 7);
      expectGradientsEq(tree, byte,
                        h.spec.name + " " + driver::to_string(mode));
    }
  }
}

TEST(BytecodeDiff, GradientsMatchUnderOpenMP) {
  // Atomic increments and reduction-shadow merges reorder FP accumulation
  // across threads, so compare against the tree-walker within tolerance.
  constexpr ExecOptions kByteOmp{ExecMode::OpenMP, 3, ExecEngine::Bytecode};
  for (const Harness& h : allKernels()) {
    for (AdjointMode mode :
         {AdjointMode::Atomic, AdjointMode::Reduction, AdjointMode::FormAD}) {
      auto tree = adjointGradients(h, mode, kTreeSerial, 9);
      auto byte = adjointGradients(h, mode, kByteOmp, 9);
      ASSERT_EQ(tree.size(), byte.size());
      for (const auto& [name, rv] : tree) {
        const auto& gv = byte.at(name);
        ASSERT_EQ(rv.size(), gv.size());
        for (size_t i = 0; i < rv.size(); ++i)
          EXPECT_LT(relDiff(rv[i], gv[i]), 1e-9)
              << h.spec.name << " " << driver::to_string(mode) << " " << name
              << "[" << i << "]";
      }
    }
  }
}

TEST(BytecodeDiff, ProfileCountsIdentical) {
  for (const Harness& h : allKernels()) {
    for (AdjointMode mode : kSafeguards) {
      exec::ExecStats ts = adjointProfile(h, mode, ExecEngine::TreeWalk);
      exec::ExecStats bs = adjointProfile(h, mode, ExecEngine::Bytecode);
      const RunProfile& tp = ts.profile;
      const RunProfile& bp = bs.profile;
      std::string where = h.spec.name + " " + driver::to_string(mode);
      expectCountsEq(tp.serial, bp.serial, where + " serial");
      ASSERT_EQ(tp.loops.size(), bp.loops.size()) << where;
      for (size_t l = 0; l < tp.loops.size(); ++l) {
        const LoopProfile& tl = tp.loops[l];
        const LoopProfile& bl = bp.loops[l];
        std::string lw = where + " loop " + std::to_string(l);
        EXPECT_EQ(tl.dynamicSchedule, bl.dynamicSchedule) << lw;
        EXPECT_EQ(tl.reductionBytes, bl.reductionBytes) << lw;
        ASSERT_EQ(tl.perIteration.size(), bl.perIteration.size()) << lw;
        for (size_t k = 0; k < tl.perIteration.size(); ++k)
          expectCountsEq(tl.perIteration[k], bl.perIteration[k],
                         lw + " iter " + std::to_string(k));
      }
      EXPECT_EQ(ts.tapePeakBytes, bs.tapePeakBytes) << where;
      EXPECT_EQ(ts.tapeDrained, bs.tapeDrained) << where;
    }
  }
}

TEST(BytecodeDiff, DisassembleSmoke) {
  Harness h = stencilHarness(1, 50, 3);
  auto kernel = h.parse();
  exec::KernelInfo info = exec::buildKernelInfo(*kernel);
  exec::BytecodeEngine eng(*kernel, info);
  EXPECT_GT(eng.instructionCount(), 0u);
  EXPECT_FALSE(eng.disassemble().empty());
}

}  // namespace
}  // namespace formad::testing
