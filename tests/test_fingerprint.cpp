// Content-fingerprint stability and persistent-store durability (the
// -cache-dir layer): golden context fingerprints for the paper kernels,
// interning-order independence of the canonical keys, edit locality, and
// recovery from corrupt/truncated/misnamed cache files.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/activity.h"
#include "analysis/symbols.h"
#include "formad/knowledge.h"
#include "helpers.h"
#include "ir/traversal.h"
#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/stencil.h"
#include "parser/parser.h"
#include "smt/diskcache.h"
#include "smt/fingerprint.h"

namespace {

using namespace formad;
namespace fs = std::filesystem;

/// contextFingerprints of every parallel region of `source`, in region
/// order.
std::vector<std::map<int, std::string>> regionFingerprints(
    const std::string& source, const std::vector<std::string>& independents,
    const std::vector<std::string>& dependents) {
  auto kernel = parser::parseKernel(source);
  auto syms = analysis::verifyKernel(*kernel);
  auto act =
      analysis::computeActivity(*kernel, syms, independents, dependents);
  std::vector<std::map<int, std::string>> out;
  ir::forEachStmt(kernel->body, [&](const ir::Stmt& s) {
    if (s.kind() != ir::StmtKind::For || !s.as<ir::For>().parallel) return;
    auto model =
        core::buildRegionModel(*kernel, s.as<ir::For>(), syms, act);
    out.push_back(core::contextFingerprints(model));
  });
  return out;
}

/// Temp store directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag)
      : path(fs::temp_directory_path() /
             (std::string("formad_fp_") + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

// The kernel behind the edit-locality tests: two branch contexts, each
// writing u at two DIFFERENT offsets (knowledge constraints normalize to
// the primed-other difference, so a lone uniform offset would cancel out).
const char* kLocalityKernel =
    "kernel loc(n: int in, u: real[] inout, v: real[] in, c: int[] in) {\n"
    "  parallel for i = 0 : n - 1 : 4 {\n"
    "    if (c[i] % 2 == 0) {\n"
    "      u[i] += v[i];\n"
    "      u[i + 1] += v[i];\n"
    "    } else {\n"
    "      u[i + 2] += v[i];\n"
    "      u[i + 5] += v[i];\n"
    "    }\n"
    "  }\n"
    "}\n";

// Golden digests: any change here means every persisted cache in the wild
// silently misses (fine) or the canonicalization broke (not fine) — bump
// consciously, never casually.
TEST(Fingerprint, GoldenPaperKernels) {
  const auto stencil = kernels::stencilSpec(2);
  auto fps = regionFingerprints(stencil.source, stencil.independents,
                                stencil.dependents);
  ASSERT_EQ(fps.size(), 1u);
  EXPECT_EQ(fps[0], (std::map<int, std::string>{
                        {0, "82a308b4fac7e65006305941f8ee1b80"}}));

  const auto gfmc = kernels::gfmcSplitSpec();
  fps = regionFingerprints(gfmc.source, gfmc.independents, gfmc.dependents);
  ASSERT_EQ(fps.size(), 2u);
  EXPECT_EQ(fps[0], (std::map<int, std::string>{
                        {1, "7f36b68334c0098501c45f266527f935"}}));
  EXPECT_EQ(fps[1], (std::map<int, std::string>{
                        {1, "a695b6e1c13c9af76a436987b9d9bf47"}}));

  const auto gg = kernels::greenGaussSpec();
  fps = regionFingerprints(gg.source, gg.independents, gg.dependents);
  ASSERT_EQ(fps.size(), 1u);
  EXPECT_EQ(fps[0], (std::map<int, std::string>{
                        {1, "b9cde78027f23615d28cfeb5013c94c5"}}));
}

TEST(Fingerprint, GoldenDigestPrimitives) {
  // Pins the digest algorithm itself (two seeded FNV-1a halves).
  EXPECT_EQ(smt::contentDigest(""), "cbf29ce4842223259e3779b97f4a7c15");
  EXPECT_EQ(smt::contentDigest("=1*i#0+0;"),
            "aee2f5bf0eaebf1fa7412c802aaf6a0f");
  // digestHex over precomputed halves agrees with contentDigest.
  const std::string k = "=1*i#0+0;";
  EXPECT_EQ(smt::digestHex(smt::fnv1a64(k),
                           smt::fnv1a64(k, smt::kDigestSeed2)),
            smt::contentDigest(k));
  // FNV-1a is a streaming left fold: digest(prefix + suffix) resumes from
  // the prefix state (the scheduler's incremental derivations rely on it).
  EXPECT_EQ(smt::fnv1a64("abcdef"), smt::fnv1a64("def", smt::fnv1a64("abc")));
}

TEST(Fingerprint, StableAcrossIndependentBuilds) {
  const auto spec = kernels::stencilSpec(4);
  const auto a =
      regionFingerprints(spec.source, spec.independents, spec.dependents);
  const auto b =
      regionFingerprints(spec.source, spec.independents, spec.dependents);
  EXPECT_EQ(a, b);
}

TEST(Fingerprint, IndependentOfAtomInterningOrder) {
  // Two tables interning the same atoms in opposite order must produce
  // byte-identical canonical keys — AtomIds are process accidents.
  smt::AtomTable fwd, rev;
  auto i1 = fwd.internVar("i", 0, false);
  auto j1 = fwd.internVar("j", 0, true);
  auto j2 = rev.internVar("j", 0, true);
  auto i2 = rev.internVar("i", 0, false);

  auto keyOf = [](smt::AtomTable& t, smt::AtomId i, smt::AtomId j) {
    smt::Fingerprinter fp(t);
    smt::LinExpr e = smt::LinExpr::atom(i);
    e.addTerm(j, smt::Rational(-1));
    std::vector<std::string> parts;
    parts.push_back(fp.constraintKey(smt::Constraint::ne(
        smt::LinExpr::atom(i), smt::LinExpr::atom(j))));
    parts.push_back(
        fp.constraintKey(smt::Constraint{std::move(e), smt::Rel::Eq}));
    return smt::conjunctionKey(std::move(parts));
  };
  const std::string a = keyOf(fwd, i1, j1);
  const std::string b = keyOf(rev, i2, j2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(smt::contentDigest(a), smt::contentDigest(b));
}

TEST(Fingerprint, ConjunctionKeyIgnoresPartOrder) {
  EXPECT_EQ(smt::conjunctionKey({"b", "a", "c"}),
            smt::conjunctionKey({"c", "a", "b"}));
  EXPECT_EQ(smt::conjunctionKey({"b", "a", "c"}), "a;b;c;");
}

TEST(Fingerprint, EditMovesOnlyTheEditedContext) {
  std::string edited = kLocalityKernel;
  const size_t at = edited.find("u[i + 5]");
  ASSERT_NE(at, std::string::npos);
  edited.replace(at, 8, "u[i + 6]");

  const auto base = regionFingerprints(kLocalityKernel, {"v"}, {"u"});
  const auto moved = regionFingerprints(edited, {"v"}, {"u"});
  ASSERT_EQ(base.size(), 1u);
  ASSERT_EQ(moved.size(), 1u);
  ASSERT_EQ(base[0].size(), 2u);  // then-context and else-context
  ASSERT_EQ(moved[0].size(), 2u);
  // The then-branch knowledge never mentions the edited reference: its
  // fingerprint must not move. The else-branch one must.
  EXPECT_EQ(base[0].at(1), moved[0].at(1));
  EXPECT_NE(base[0].at(2), moved[0].at(2));
}

// --- persistent store durability ---

TEST(DiskCache, CheckRecordRoundtripAndBudgetGuard) {
  TempDir dir("check");
  smt::PersistentVerdictStore store(dir.path.string());
  const std::string key = "!1*i#0'+-1*i#0+0;";

  smt::VerdictCache::Entry complete{smt::CheckResult::Unsat, 2, true, 50};
  store.storeCheck(key, complete);
  // Complete verdict: served at any budget that covers its step count.
  EXPECT_TRUE(store.loadCheck(key, 0).has_value());
  EXPECT_TRUE(store.loadCheck(key, 50).has_value());
  EXPECT_FALSE(store.loadCheck(key, 10).has_value());
  auto e = store.loadCheck(key, 0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->result, smt::CheckResult::Unsat);
  EXPECT_EQ(e->tier, 2);
  EXPECT_TRUE(e->complete);
  EXPECT_EQ(e->steps, 50);

  // Exhausted verdict: only served under a budget no larger than the one
  // that ran out — a starved Unknown must never poison an unlimited run.
  const std::string key2 = key + "x";
  smt::VerdictCache::Entry starved{smt::CheckResult::Unknown, 2, false, 100};
  store.storeCheck(key2, starved);
  EXPECT_TRUE(store.loadCheck(key2, 100).has_value());
  EXPECT_TRUE(store.loadCheck(key2, 50).has_value());
  EXPECT_FALSE(store.loadCheck(key2, 200).has_value());
  EXPECT_FALSE(store.loadCheck(key2, 0).has_value());
}

TEST(DiskCache, TaskRecordRoundtripVerifiesFullKey) {
  TempDir dir("task");
  smt::PersistentVerdictStore store(dir.path.string());
  const std::string key = "P|!1*i#0'+-1*i#0+0;|=1*q#0+0";
  const std::string digest(32, 'a');

  smt::PersistentVerdictStore::TaskRecord rec;
  rec.pairSafe = true;
  rec.tiers = {2, 0};
  rec.exhausted = {0, 0};
  rec.steps = {40, 1};
  store.storeTask(key, rec, digest);

  auto got = store.loadTask(key, 0, digest);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->pairSafe);
  EXPECT_FALSE(got->unsat);
  EXPECT_EQ(got->tiers, (std::vector<int>{2, 0}));
  EXPECT_EQ(got->steps, (std::vector<long long>{40, 1}));

  // A different digest looks under a different file name: miss.
  EXPECT_FALSE(store.loadTask(key, 0, std::string(32, 'b')).has_value());
  // Same digest, different key (a simulated digest collision): the full
  // key verification rejects it — a collision costs a miss, never a wrong
  // verdict.
  EXPECT_FALSE(store.loadTask(key + ";", 0, digest).has_value());
  // Budget guard applies to EVERY recorded check.
  EXPECT_FALSE(store.loadTask(key, 10, digest).has_value());
}

TEST(DiskCache, CorruptAndTruncatedFilesFallThrough) {
  TempDir dir("corrupt");
  smt::PersistentVerdictStore store(dir.path.string());
  const std::string key = "!1*i#0'+-1*i#0+0;";
  store.storeCheck(key, {smt::CheckResult::Unsat, 2, true, 5});
  ASSERT_TRUE(store.loadCheck(key, 0).has_value());

  fs::path file;
  for (const auto& e : fs::directory_iterator(dir.path)) file = e.path();
  ASSERT_FALSE(file.empty());

  // Truncate: drop the trailing "ok" terminator — a torn write.
  std::string whole;
  {
    std::ifstream in(file, std::ios::binary);
    whole.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(whole.size(), 3u);
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << whole.substr(0, whole.size() - 3);
  }
  EXPECT_FALSE(store.loadCheck(key, 0).has_value());

  // Corrupt: garbage body under the right name.
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << "not a record at all";
  }
  EXPECT_FALSE(store.loadCheck(key, 0).has_value());

  // Empty file.
  { std::ofstream out(file, std::ios::binary | std::ios::trunc); }
  EXPECT_FALSE(store.loadCheck(key, 0).has_value());

  // Recovery: a rewrite heals the slot.
  store.storeCheck(key, {smt::CheckResult::Unsat, 2, true, 5});
  EXPECT_TRUE(store.loadCheck(key, 0).has_value());

  const auto s = store.stats();
  EXPECT_EQ(s.checkStores, 2);
  EXPECT_EQ(s.checkHits, 2);
  EXPECT_EQ(s.checkMisses, 3);
}

}  // namespace
