// IR node behaviour: clone, structural equality, traversal, builder.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/traversal.h"
#include "parser/parser.h"

namespace formad::ir {
namespace {

namespace b = formad::ir::build;

TEST(Expr, StructuralEquality) {
  auto e1 = parser::parseExpr("a[i - 1] * 2.0 + sin(x)");
  auto e2 = parser::parseExpr("a[i - 1] * 2.0 + sin(x)");
  auto e3 = parser::parseExpr("a[i - 2] * 2.0 + sin(x)");
  EXPECT_TRUE(structurallyEqual(*e1, *e2));
  EXPECT_FALSE(structurallyEqual(*e1, *e3));
}

TEST(Expr, CloneIsDeepAndEqual) {
  auto e = parser::parseExpr("pow(a[i, j], b) / (c - 1)");
  auto c = e->clone();
  EXPECT_TRUE(structurallyEqual(*e, *c));
  EXPECT_NE(e.get(), c.get());
  // Mutating the clone must not affect the original.
  c->as<Binary>().op = BinOp::Mul;
  EXPECT_FALSE(structurallyEqual(*e, *c));
}

TEST(Stmt, CloneLoopPreservesFlags) {
  auto k = parser::parseKernel(R"(
kernel f(n: int in, a: real[] inout) {
  parallel for i = 0 : n schedule(dynamic) private(t) {
    var t: real = a[i];
    a[i] = t * 2.0;
  }
}
)");
  const auto& loop = k->body[0]->as<For>();
  auto c = loop.clone();
  const auto& cl = c->as<For>();
  EXPECT_TRUE(cl.parallel);
  EXPECT_EQ(cl.sched, Schedule::Dynamic);
  EXPECT_EQ(cl.privates, loop.privates);
  EXPECT_EQ(cl.body.size(), loop.body.size());
}

TEST(Traversal, ForEachStmtVisitsNested) {
  auto k = parser::parseKernel(R"(
kernel f(n: int in, a: real[] inout) {
  for j = 0 : n {
    if (j > 0) {
      a[j] = 1.0;
    } else {
      a[0] = 2.0;
    }
  }
}
)");
  int stmts = 0;
  forEachStmt(k->body, [&](const Stmt&) { ++stmts; });
  EXPECT_EQ(stmts, 4);  // for, if, 2 assigns
}

TEST(Traversal, AssignedNamesIncludesAllDefKinds) {
  auto k = parser::parseKernel(R"(
kernel f(n: int in, a: real[] inout, s: real out) {
  var t: real = 1.0;
  for j = 0 : n {
    a[j] = t;
    s = t;
  }
}
)");
  auto names = assignedNames(k->body, /*includeArrays=*/true);
  std::set<std::string> got(names.begin(), names.end());
  EXPECT_TRUE(got.count("a"));
  EXPECT_TRUE(got.count("s"));
  EXPECT_TRUE(got.count("t"));  // DeclLocal counts as a def
  EXPECT_TRUE(got.count("j"));  // loop counter
  EXPECT_FALSE(got.count("n"));
}

TEST(Traversal, ReferencesVar) {
  auto e = parser::parseExpr("a[c[i] + 1] * x");
  EXPECT_TRUE(referencesVar(*e, "a"));
  EXPECT_TRUE(referencesVar(*e, "c"));
  EXPECT_TRUE(referencesVar(*e, "i"));
  EXPECT_TRUE(referencesVar(*e, "x"));
  EXPECT_FALSE(referencesVar(*e, "y"));
}

TEST(Builder, IncrementBuildsSelfRead) {
  auto s = b::increment(b::idx1("u", b::var("i")), b::rconst(1.0));
  const auto& a = s->as<Assign>();
  EXPECT_EQ(printExpr(*a.rhs), "u[i] + 1.0");
}

TEST(Kernel, ProgramRejectsDuplicates) {
  Program p;
  auto k1 = std::make_unique<Kernel>();
  k1->name = "f";
  (void)p.add(std::move(k1));
  auto k2 = std::make_unique<Kernel>();
  k2->name = "f";
  EXPECT_THROW((void)p.add(std::move(k2)), Error);
}

TEST(Printer, GuardsAreRendered) {
  auto s = b::increment(b::idx1("ub", b::var("i")), b::var("v"));
  s->as<Assign>().guard = Guard::Atomic;
  EXPECT_NE(printStmt(*s).find("atomic"), std::string::npos);
  s->as<Assign>().guard = Guard::Reduction;
  EXPECT_NE(printStmt(*s).find("shadow"), std::string::npos);
}

TEST(Printer, PushPopRendered) {
  auto p1 = b::push(TapeChannel::Real, b::var("x"));
  auto p2 = b::pop(TapeChannel::Int, "t");
  EXPECT_NE(printStmt(*p1).find("PUSH_real"), std::string::npos);
  EXPECT_NE(printStmt(*p2).find("POP_int"), std::string::npos);
}

}  // namespace
}  // namespace formad::ir
