// The shared work-stealing analysis pool (support::SharedAnalysisPool) and
// the single-flight in-flight proof registry layered over
// smt::PersistentVerdictStore: every task index runs exactly once at any
// worker count, exceptions and cancellation keep WorkPool's semantics,
// priority classes and fairness stats behave, duplicate claims join the
// winner's published verdict, an unclaimed (failed) winner hands ownership
// to a joiner instead of wedging it, budget-insufficient publishes do not
// satisfy joiners, and concurrent identical analyses through the driver do
// exactly one cold run's worth of fresh work while staying byte-identical.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "driver/driver.h"
#include "formad/formad.h"
#include "kernels/stencil.h"
#include "parser/parser.h"
#include "smt/diskcache.h"
#include "support/cancel.h"
#include "support/pool.h"

namespace {

using namespace formad;
namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag)
      : path(fs::temp_directory_path() /
             (std::string("formad_flight_") + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

// ---------------------------------------------------------------------------
// SharedAnalysisPool: the TaskPool contract.

TEST(SharedPool, EveryIndexRunsExactlyOnceAtAnyWorkerCount) {
  for (int workers : {0, 1, 3, 7}) {
    support::SharedAnalysisPool pool(workers);
    auto client = pool.makeClient();
    EXPECT_EQ(client->width(), workers == 0 ? 1 : workers + 1);
    for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{257}}) {
      std::vector<std::atomic<int>> ran(n);
      for (auto& r : ran) r.store(0);
      client->run(n, [&](size_t i, int worker) {
        ASSERT_LT(worker, client->width());
        ran[i].fetch_add(1);
      });
      EXPECT_EQ(client->lastRunSkipped(), 0u);
      for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(ran[i].load(), 1) << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(SharedPool, FirstExceptionRethrownAndRestSkipped) {
  support::SharedAnalysisPool pool(3);
  auto client = pool.makeClient();
  std::atomic<int> executed{0};
  support::CancelToken cancel;
  EXPECT_THROW(
      client->run(
          200,
          [&](size_t i, int) {
            if (i == 0) throw std::runtime_error("boom");
            executed.fetch_add(1);
          },
          &cancel),
      std::runtime_error);
  // The throw cancels the rest: executed + skipped + the thrower cover all
  // 200 indices, and at least some tail was skipped, not executed.
  EXPECT_EQ(executed.load() + static_cast<int>(client->lastRunSkipped()) + 1,
            200);
  EXPECT_TRUE(cancel.cancelled());
}

TEST(SharedPool, FiredCancelTokenSkipsRemainingTasks) {
  support::SharedAnalysisPool pool(2);
  auto client = pool.makeClient();
  support::CancelToken cancel;
  std::atomic<int> executed{0};
  client->run(
      100,
      [&](size_t i, int) {
        if (i == 3) cancel.cancel();
        executed.fetch_add(1);
      },
      &cancel);
  EXPECT_GT(client->lastRunSkipped(), 0u);
  EXPECT_EQ(executed.load() + static_cast<int>(client->lastRunSkipped()), 100);
}

TEST(SharedPool, ConcurrentClientsAllCompleteAndShareWorkers) {
  support::SharedAnalysisPool pool(4);
  constexpr int kClients = 6;
  constexpr size_t kTasks = 300;
  std::vector<std::atomic<int>> done(kClients);
  for (auto& d : done) d.store(0);
  std::vector<std::thread> sessions;
  for (int c = 0; c < kClients; ++c) {
    sessions.emplace_back([&pool, &done, c] {
      auto client = pool.makeClient();
      client->setPriority(c % support::SharedAnalysisPool::kPriorityClasses);
      for (int round = 0; round < 3; ++round)
        client->run(kTasks, [&](size_t, int) { done[c].fetch_add(1); });
    });
  }
  for (auto& t : sessions) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(done[c].load(), static_cast<int>(kTasks) * 3);
  const auto s = pool.stats();
  EXPECT_EQ(s.workers, 4);
  EXPECT_EQ(s.queuedJobs, 0);
  EXPECT_EQ(s.busyWorkers, 0);
  EXPECT_EQ(s.jobsRun, kClients * 3);
  EXPECT_EQ(s.tasksStolen + s.tasksOwnerRun,
            static_cast<long long>(kTasks) * kClients * 3);
}

TEST(SharedPool, PriorityIsClampedToValidClasses) {
  support::SharedAnalysisPool pool(1);
  auto client = pool.makeClient();
  client->setPriority(-5);
  EXPECT_EQ(client->priority(), support::SharedAnalysisPool::kPriorityHigh);
  client->setPriority(99);
  EXPECT_EQ(client->priority(), support::SharedAnalysisPool::kPriorityLow);
}

// ---------------------------------------------------------------------------
// Single-flight registry, store level.

smt::VerdictCache::Entry unsatEntry() {
  smt::VerdictCache::Entry e;
  e.result = smt::CheckResult::Unsat;
  e.tier = 2;
  e.complete = true;
  e.steps = 10;
  return e;
}

TEST(SingleFlight, JoinerIsServedTheWinnersPublishedVerdict) {
  smt::PersistentVerdictStore store("", /*memoryLayer=*/true);
  const std::string key = "conj|a=b";

  auto winner = store.claimCheck(key, 0, nullptr);
  ASSERT_FALSE(winner.served.has_value());
  ASSERT_TRUE(winner.claim.owned());

  std::optional<smt::VerdictCache::Entry> joined;
  std::thread joiner([&] {
    auto c = store.claimCheck(key, 0, nullptr);
    // Whether this thread blocked on the claim or probed after the publish
    // resolved it, it must be SERVED — never a second owner.
    ASSERT_TRUE(c.served.has_value());
    EXPECT_FALSE(c.claim.owned());
    joined = c.served;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  store.storeCheck(key, unsatEntry());  // publish resolves the claim

  joiner.join();
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(joined->result, smt::CheckResult::Unsat);
  EXPECT_TRUE(joined->complete);
  const auto s = store.stats();
  EXPECT_EQ(s.flightUnclaims, 0);
  EXPECT_GE(s.flightClaims, 1);
}

TEST(SingleFlight, FailedWinnerUnclaimsAndAJoinerRecomputes) {
  smt::PersistentVerdictStore store("", /*memoryLayer=*/true);
  const std::string key = "conj|fails";

  std::optional<smt::PersistentVerdictStore::CheckClaim> winner(
      store.claimCheck(key, 0, nullptr));
  ASSERT_TRUE(winner->claim.owned());

  std::atomic<bool> joinerOwned{false};
  std::thread joiner([&] {
    auto c = store.claimCheck(key, 0, nullptr);
    // The winner died without publishing: this thread must be promoted to
    // owner (no hang, no poisoned result) and recompute.
    ASSERT_TRUE(c.claim.owned());
    EXPECT_FALSE(c.served.has_value());
    joinerOwned.store(true);
    store.storeCheck(key, unsatEntry());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  winner.reset();  // simulated mid-flight failure: claim unwinds unpublished

  joiner.join();
  EXPECT_TRUE(joinerOwned.load());
  EXPECT_GE(store.stats().flightUnclaims, 1);
  // The recomputed verdict is available normally.
  const auto e = store.loadCheck(key, 0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->result, smt::CheckResult::Unsat);
}

TEST(SingleFlight, BudgetInsufficientPublishPromotesTheJoiner) {
  smt::PersistentVerdictStore store("", /*memoryLayer=*/true);
  const std::string key = "conj|starved";

  auto winner = store.claimCheck(key, /*stepLimit=*/5, nullptr);
  ASSERT_TRUE(winner.claim.owned());

  std::thread joiner([&] {
    // Unlimited-budget caller: the winner's exhausted verdict (recorded
    // under limit 5) fails the provenance guard, so this thread must come
    // back OWNING the claim to recompute under its own budget — joins are
    // served through the same budget guard as any cache hit.
    auto c = store.claimCheck(key, /*stepLimit=*/0, nullptr);
    EXPECT_TRUE(c.claim.owned());
    EXPECT_FALSE(c.served.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  smt::VerdictCache::Entry starved;
  starved.result = smt::CheckResult::Unknown;
  starved.tier = 2;
  starved.complete = false;
  starved.steps = 5;  // exhausted at limit 5
  store.storeCheck(key, starved);

  joiner.join();
  // A budget-5 caller, by contrast, IS satisfied by the starved entry.
  const auto e = store.loadCheck(key, 5);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->complete);
}

TEST(SingleFlight, WaitingJoinerHonorsCancellation) {
  smt::PersistentVerdictStore store("", /*memoryLayer=*/true);
  const std::string key = "conj|stalled";
  auto winner = store.claimCheck(key, 0, nullptr);
  ASSERT_TRUE(winner.claim.owned());

  support::CancelToken cancel;
  cancel.armDeadline(60);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)store.claimCheck(key, 0, &cancel), support::Cancelled);
  const auto waited = std::chrono::steady_clock::now() - t0;
  // Bounded waits poll the token: a stalled winner cannot wedge a joiner
  // past its own deadline (generous ceiling for slow CI machines).
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(SingleFlight, TaskClaimsJoinAndUnclaimLikeCheckClaims) {
  smt::PersistentVerdictStore store("", /*memoryLayer=*/true);
  const std::string key = "task|base+probes";
  const std::string digest = "0123456789abcdef0123456789abcdef";

  auto winner = store.claimTask(key, 0, digest, nullptr);
  ASSERT_TRUE(winner.claim.owned());
  ASSERT_FALSE(winner.served.has_value());

  std::optional<smt::PersistentVerdictStore::TaskRecord> joined;
  std::thread joiner([&] {
    auto c = store.claimTask(key, 0, digest, nullptr);
    ASSERT_TRUE(c.served.has_value());
    EXPECT_FALSE(c.claim.owned());
    joined = c.served;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  smt::PersistentVerdictStore::TaskRecord rec;
  rec.pairSafe = true;
  rec.tiers = {2, 2};
  rec.exhausted = {0, 0};
  rec.steps = {4, 9};
  store.storeTask(key, rec, digest);

  joiner.join();
  ASSERT_TRUE(joined.has_value());
  EXPECT_TRUE(joined->pairSafe);
  EXPECT_EQ(joined->steps, (std::vector<long long>{4, 9}));
}

// ---------------------------------------------------------------------------
// End to end: concurrent identical analyses over one shared store perform
// exactly one cold run's worth of fresh work, byte-identically.

struct Analyzed {
  std::unique_ptr<ir::Kernel> kernel;
  core::KernelAnalysis analysis;
};

std::string reportOf(const Analyzed& a) {
  return core::describe(a.analysis, false) + core::describeTiers(a.analysis);
}

Analyzed analyzeStencil(smt::PersistentVerdictStore* store) {
  const auto spec = kernels::stencilSpec(4);
  driver::DriverOptions opts;
  opts.verdictStore = store;
  auto kernel = parser::parseKernel(spec.source);
  auto analysis = driver::analyze(*kernel, spec.independents, spec.dependents,
                                  opts);
  return {std::move(kernel), std::move(analysis)};
}

TEST(SingleFlight, ConcurrentIdenticalAnalysesDoOneColdRunOfFreshWork) {
  // Reference: one serial cold run on a private store.
  smt::PersistentVerdictStore refStore("", /*memoryLayer=*/true);
  const Analyzed ref = analyzeStencil(&refStore);
  const std::string refReport = reportOf(ref);
  const long long uniqueTasks = ref.analysis.tasksPersisted();
  const long long uniqueChecks = ref.analysis.freshSolverChecks();
  ASSERT_GT(uniqueTasks, 0);
  ASSERT_GT(uniqueChecks, 0);

  // 8 threads race the identical analysis against one cold shared store.
  smt::PersistentVerdictStore store("", /*memoryLayer=*/true);
  constexpr int kRuns = 8;
  std::vector<Analyzed> runs(kRuns);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRuns; ++r)
    threads.emplace_back([&runs, &store, r] { runs[r] = analyzeStencil(&store); });
  for (auto& t : threads) t.join();

  long long persisted = 0, fresh = 0;
  for (const auto& run : runs) {
    EXPECT_EQ(reportOf(run), refReport);  // byte-identical under racing
    persisted += run.analysis.tasksPersisted();
    fresh += run.analysis.freshSolverChecks();
    // Accounting closes: every task was spliced, joined, or persisted.
    EXPECT_EQ(run.analysis.tasksSpliced() + run.analysis.tasksJoined() +
                  run.analysis.tasksPersisted(),
              ref.analysis.tasksSpliced() + ref.analysis.tasksJoined() +
                  ref.analysis.tasksPersisted());
  }
  // The single-flight guarantee: ACROSS ALL EIGHT racing runs, each unique
  // conjunction was evaluated exactly once — total fresh work equals one
  // cold run, duplicates joined instead of recomputing.
  EXPECT_EQ(persisted, uniqueTasks);
  EXPECT_EQ(fresh, uniqueChecks);
  EXPECT_EQ(store.stats().taskStores, uniqueTasks);
  EXPECT_EQ(store.stats().flightUnclaims, 0);
}

}  // namespace
