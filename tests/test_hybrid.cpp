// Differential suite for the Hybrid safeguard (driver::AdjointMode::Hybrid).
//
// Hybrid consumes the per-(var, access-site) verdict map: increments whose
// every pair proved disjoint stay plainly shared; only the residual
// unproven sites are guarded (atomic or thread-local accumulation, cost
// model's pick). Whatever mix the builder chooses, the numbers must be the
// numbers: on every paper kernel the hybrid gradients match the serial and
// the all-atomic references within 1e-12 relative error under both
// execution engines and multiple OpenMP threads; on the deliberately racy
// mutants (executed serially — their parallel primal is nondeterministic
// by construction) hybrid still reproduces the serial reference; and a
// budget-starved hybrid — every site degraded — agrees with the unstarved
// one that proves everything.
//
// Tolerance rationale (same as test_openmp_exec.cpp): reduction-guarded
// accumulation merges thread-private copies at the join point, which
// reassociates floating-point sums; 1e-12 relative is far above round-off
// at these sizes and far below any real disagreement.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "helpers.h"
#include "kernels/mutants.h"

namespace formad::testing {
namespace {

using driver::AdjointMode;
using exec::ExecEngine;
using exec::ExecMode;
using exec::ExecOptions;

struct Case {
  std::string name;
  Harness harness;
};

/// The six paper kernels (Sec. 7 of the paper plus the indirect gather).
std::vector<Case> paperKernels() {
  std::vector<Case> cases;
  cases.push_back({"small_stencil", stencilHarness(2, 128, 11)});
  cases.push_back({"large_stencil", stencilHarness(8, 192, 11)});
  cases.push_back({"lbm", lbmHarness(11)});
  cases.push_back({"gfmc_split", gfmcHarness(false, 11)});
  cases.push_back({"greengauss", greenGaussHarness(48, 11)});
  cases.push_back({"indirect", indirectHarness(96, 11)});
  return cases;
}

void expectSameGradients(
    const std::map<std::string, std::vector<double>>& ref,
    const std::map<std::string, std::vector<double>>& got,
    const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (const auto& [var, rv] : ref) {
    ASSERT_TRUE(got.count(var)) << context << "." << var;
    const auto& gv = got.at(var);
    ASSERT_EQ(rv.size(), gv.size()) << context << "." << var;
    for (size_t i = 0; i < rv.size(); ++i)
      EXPECT_LT(relDiff(rv[i], gv[i]), 1e-12)
          << context << "." << var << "[" << i << "]";
  }
}

class HybridExec
    : public ::testing::TestWithParam<std::pair<ExecEngine, int>> {};

TEST_P(HybridExec, GradientsMatchSerialAndAtomicOnPaperKernels) {
  const auto [engine, threads] = GetParam();
  ASSERT_GT(threads, 1) << "this suite exists to exercise numThreads > 1";

  ExecOptions serial;
  serial.engine = engine;
  serial.mode = ExecMode::Serial;

  ExecOptions omp;
  omp.engine = engine;
  omp.mode = ExecMode::OpenMP;
  omp.numThreads = threads;

  for (const Case& c : paperKernels()) {
    const std::string ctx =
        c.name + " @" + std::to_string(threads) + "T " +
        (engine == ExecEngine::Bytecode ? "bytecode" : "treewalk");
    auto ref = adjointGradients(c.harness, AdjointMode::Serial, serial, 5);
    auto atomic = adjointGradients(c.harness, AdjointMode::Atomic, omp, 5);
    auto hybrid = adjointGradients(c.harness, AdjointMode::Hybrid, omp, 5);
    expectSameGradients(ref, hybrid, ctx + " (vs serial)");
    expectSameGradients(atomic, hybrid, ctx + " (vs atomic)");
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndThreads, HybridExec,
    ::testing::Values(std::make_pair(ExecEngine::TreeWalk, 2),
                      std::make_pair(ExecEngine::TreeWalk, 4),
                      std::make_pair(ExecEngine::Bytecode, 2),
                      std::make_pair(ExecEngine::Bytecode, 4)));

// The racy mutants force real residue: their analysis leaves unproven
// pairs, so hybrid must guard. Their parallel primal is nondeterministic,
// so the execution under comparison is serial — what hybrid must preserve
// is the math, not the schedule. (gather_racy is absent by design: its
// knowledge base is contradictory and differentiate() refuses it in every
// mode, hybrid included.)
TEST(HybridRacyMutants, SerialExecutionReproducesTheSerialReference) {
  std::vector<Case> mutants;
  {
    Harness h;
    h.spec = kernels::stencilRacySpec();
    h.bind = [](exec::Inputs& io) {
      kernels::Rng rng(11);
      kernels::bindStencilRacy(io, 96, rng);
    };
    mutants.push_back({"stencil_racy", std::move(h)});
  }
  {
    Harness h;
    h.spec = kernels::stencilStrideRacySpec();
    h.bind = [](exec::Inputs& io) {
      kernels::Rng rng(11);
      kernels::bindStencilStrideRacy(io, 96, rng);
    };
    mutants.push_back({"stencil_stride_racy", std::move(h)});
  }
  {
    Harness h;
    h.spec = kernels::sumRacySpec();
    h.bind = [](exec::Inputs& io) {
      kernels::Rng rng(11);
      kernels::bindSumRacy(io, 64, rng);
    };
    mutants.push_back({"sum_racy", std::move(h)});
  }

  for (ExecEngine engine : {ExecEngine::TreeWalk, ExecEngine::Bytecode}) {
    ExecOptions serial;
    serial.engine = engine;
    serial.mode = ExecMode::Serial;
    for (const Case& c : mutants) {
      const std::string ctx =
          c.name + (engine == ExecEngine::Bytecode ? " bytecode" : " treewalk");
      auto ref = adjointGradients(c.harness, AdjointMode::Serial, serial, 5);
      auto hybrid = adjointGradients(c.harness, AdjointMode::Hybrid, serial, 5);
      expectSameGradients(ref, hybrid, ctx);
    }
  }
}

// Governance must not change the math: a budget-starved hybrid (every
// solver check exhausts after one step, every site degraded to a guard)
// computes the same gradients as the unstarved hybrid that proves every
// site disjoint.
TEST(HybridGovernance, BudgetStarvedAgreesWithUnstarved) {
  driver::DriverOptions starved;
  starved.mode = AdjointMode::Hybrid;
  starved.fastpath = smt::FastPathMode::Off;
  starved.solverStepBudget = 1;

  driver::DriverOptions unstarved;
  unstarved.mode = AdjointMode::Hybrid;

  for (ExecEngine engine : {ExecEngine::TreeWalk, ExecEngine::Bytecode}) {
    ExecOptions omp;
    omp.engine = engine;
    omp.mode = ExecMode::OpenMP;
    omp.numThreads = 4;
    for (const Case& c : paperKernels()) {
      const std::string ctx =
          c.name + " starved-vs-unstarved" +
          (engine == ExecEngine::Bytecode ? " bytecode" : " treewalk");
      auto full = adjointGradients(c.harness, unstarved, omp, 5);
      auto lean = adjointGradients(c.harness, starved, omp, 5);
      expectSameGradients(full, lean, ctx);
    }
  }
}

}  // namespace
}  // namespace formad::testing
