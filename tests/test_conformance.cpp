// Cross-thread-count conformance: the analysis pipeline must be a pure
// function of the kernel, not of the worker count. Every paper kernel and
// every racy mutant goes through the full driver at 1/2/4/8 analysis
// threads, and the timing-free rendered reports (FormAD analysis describe,
// race-check describe, warnings, and — for the mutants — the exact Error
// message of the refusal) must be byte-identical across all counts.
//
// The second half is a differential fuzzer: random kernels from the shared
// generator (tests/helpers.cpp) are analyzed serially and in parallel
// (byte-identical reports required), and their FormAD adjoints are executed
// under TreeWalk/Serial, Bytecode/Serial, and Bytecode/OpenMP — the three
// engines must agree on every gradient entry within 1e-12 relative error
// (OpenMP merges thread-local reduction copies in thread order, so the
// floating-point sums may differ in the last bits; see exec/interp.h).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "formad/formad.h"
#include "helpers.h"
#include "kernels/data.h"
#include "kernels/mutants.h"
#include "racecheck/racecheck.h"

namespace formad::testing {
namespace {

using driver::AdjointMode;
using exec::ExecEngine;
using exec::ExecMode;
using exec::ExecOptions;

const int kThreadCounts[] = {1, 2, 4, 8};

/// Everything the driver reports that must not depend on the worker count.
struct Transcript {
  std::string analysis;   // core::describe(analysis, /*timing=*/false)
  std::string racecheck;  // RaceReport::describe()
  std::string warnings;   // DifferentiateResult::warnings, joined
  std::string error;      // Error::what() when differentiate refuses
};

Transcript runDriver(const kernels::KernelSpec& spec, int analysisThreads,
                     smt::FastPathMode fastpath = smt::FastPathMode::Full,
                     bool absint = false) {
  Transcript t;
  auto primal = parser::parseKernel(spec.source);
  driver::DriverOptions dopts;
  dopts.mode = AdjointMode::FormAD;
  dopts.racecheckPrimal = true;
  dopts.analysisThreads = analysisThreads;
  dopts.fastpath = fastpath;
  dopts.absint = absint;
  try {
    auto dr = driver::differentiate(*primal, spec.independents,
                                    spec.dependents, dopts);
    t.analysis = core::describe(dr.analysis, /*includeTiming=*/false);
    t.racecheck = dr.raceReport.describe();
    for (const auto& w : dr.warnings) t.warnings += w + "\n";
  } catch (const Error& e) {
    t.error = e.what();
  }
  return t;
}

void expectThreadInvariant(const kernels::KernelSpec& spec) {
  const Transcript serial = runDriver(spec, 1);
  for (int threads : kThreadCounts) {
    if (threads == 1) continue;
    const Transcript parallel = runDriver(spec, threads);
    EXPECT_EQ(serial.analysis, parallel.analysis)
        << spec.name << " analysis report diverges at " << threads
        << " threads";
    EXPECT_EQ(serial.racecheck, parallel.racecheck)
        << spec.name << " race-check report diverges at " << threads
        << " threads";
    EXPECT_EQ(serial.warnings, parallel.warnings)
        << spec.name << " warnings diverge at " << threads << " threads";
    EXPECT_EQ(serial.error, parallel.error)
        << spec.name << " refusal message diverges at " << threads
        << " threads";
  }
}

// --- paper kernels ---

TEST(Conformance, CompactStencil) {
  expectThreadInvariant(stencilHarness(1, 64, 7).spec);
}

TEST(Conformance, WideStencil) {
  expectThreadInvariant(stencilHarness(3, 96, 7).spec);
}

TEST(Conformance, Lbm) { expectThreadInvariant(lbmHarness(7).spec); }

TEST(Conformance, GfmcSplit) { expectThreadInvariant(gfmcHarness(false, 7).spec); }

TEST(Conformance, GfmcFused) { expectThreadInvariant(gfmcHarness(true, 7).spec); }

TEST(Conformance, GreenGauss) {
  expectThreadInvariant(greenGaussHarness(32, 7).spec);
}

TEST(Conformance, IndirectGather) {
  expectThreadInvariant(indirectHarness(64, 7).spec);
}

// --- fast-path conformance: -fastpath must be invisible in the report ---
//
// The tiered deciders claim exactness, so the whole transcript (verdicts,
// query counts, witnesses, refusals) must be byte-identical between
// -fastpath=off and the syntactic/full tiers at every thread count.

void expectFastPathInvariant(const kernels::KernelSpec& spec) {
  for (int threads : kThreadCounts) {
    const Transcript off = runDriver(spec, threads, smt::FastPathMode::Off);
    for (smt::FastPathMode mode :
         {smt::FastPathMode::Syntactic, smt::FastPathMode::Full}) {
      const Transcript fast = runDriver(spec, threads, mode);
      EXPECT_EQ(off.analysis, fast.analysis)
          << spec.name << " analysis report diverges from -fastpath=off at "
          << smt::to_string(mode) << ", " << threads << " threads";
      EXPECT_EQ(off.racecheck, fast.racecheck)
          << spec.name << " race-check report diverges from -fastpath=off at "
          << smt::to_string(mode) << ", " << threads << " threads";
      EXPECT_EQ(off.warnings, fast.warnings)
          << spec.name << " warnings diverge from -fastpath=off at "
          << smt::to_string(mode) << ", " << threads << " threads";
      EXPECT_EQ(off.error, fast.error)
          << spec.name << " refusal diverges from -fastpath=off at "
          << smt::to_string(mode) << ", " << threads << " threads";
    }
  }
}

TEST(Conformance, FastPathModesAgreeOnWideStencil) {
  expectFastPathInvariant(stencilHarness(3, 96, 7).spec);
}

TEST(Conformance, FastPathModesAgreeOnLbm) {
  expectFastPathInvariant(lbmHarness(7).spec);
}

TEST(Conformance, FastPathModesAgreeOnGreenGauss) {
  expectFastPathInvariant(greenGaussHarness(32, 7).spec);
}

TEST(Conformance, FastPathModesAgreeOnRacyMutant) {
  // Refusals carry SMT-derived witness text; the fast path must not change
  // a single byte of it.
  expectFastPathInvariant(kernels::stencilStrideRacySpec());
}

// --- abstract interpreter conformance ---
//
// -absint=on must be a pure function of the kernel too: the whole driver
// transcript (analysis, race check, warnings, refusals) byte-identical at
// every thread count. (-absint=off is the default, so the tests above
// already pin the off path.)

void expectAbsintThreadInvariant(const kernels::KernelSpec& spec) {
  const Transcript serial =
      runDriver(spec, 1, smt::FastPathMode::Full, /*absint=*/true);
  for (int threads : kThreadCounts) {
    if (threads == 1) continue;
    const Transcript parallel =
        runDriver(spec, threads, smt::FastPathMode::Full, /*absint=*/true);
    EXPECT_EQ(serial.analysis, parallel.analysis)
        << spec.name << " absint=on analysis report diverges at " << threads
        << " threads";
    EXPECT_EQ(serial.racecheck, parallel.racecheck)
        << spec.name << " absint=on race-check report diverges at "
        << threads << " threads";
    EXPECT_EQ(serial.warnings, parallel.warnings)
        << spec.name << " absint=on warnings diverge at " << threads
        << " threads";
    EXPECT_EQ(serial.error, parallel.error)
        << spec.name << " absint=on refusal diverges at " << threads
        << " threads";
  }
}

TEST(Conformance, AbsintOnWideStencil) {
  expectAbsintThreadInvariant(stencilHarness(3, 96, 7).spec);
}

TEST(Conformance, AbsintOnLbm) {
  expectAbsintThreadInvariant(lbmHarness(7).spec);
}

TEST(Conformance, AbsintOnGfmcFused) {
  expectAbsintThreadInvariant(gfmcHarness(true, 7).spec);
}

TEST(Conformance, AbsintOnRacyMutant) {
  expectAbsintThreadInvariant(kernels::stencilStrideRacySpec());
}

// --- racy mutants: the refusal (witnesses included) must match too ---

TEST(Conformance, StencilRacyMutant) {
  const kernels::KernelSpec spec = kernels::stencilRacySpec();
  const Transcript t = runDriver(spec, 1);
  EXPECT_FALSE(t.error.empty()) << "mutant should be refused";
  expectThreadInvariant(spec);
}

TEST(Conformance, StencilStrideRacyMutant) {
  expectThreadInvariant(kernels::stencilStrideRacySpec());
}

TEST(Conformance, LbmRacyMutant) {
  expectThreadInvariant(kernels::lbmRacySpec());
}

TEST(Conformance, GatherRacyMutant) {
  expectThreadInvariant(kernels::gatherRacySpec());
}

TEST(Conformance, SumRacyMutant) {
  expectThreadInvariant(kernels::sumRacySpec());
}

// --- differential fuzzer ---
//
// Each seed draws one kernel from the shared generator and checks two
// independent kinds of agreement:
//   (a) analysis: the timing-free FormAD report at 1 thread vs 4 threads;
//   (b) execution: adjoint gradients under the three engine configurations.
// 200 seeds; zero disagreements tolerated.

class DifferentialFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialFuzz, SerialAndParallelAnalysesAgree) {
  const Harness h = randomHarness(GetParam());
  auto primal = h.parse();
  auto serial =
      driver::analyze(*primal, h.spec.independents, h.spec.dependents, 1);
  auto parallel =
      driver::analyze(*primal, h.spec.independents, h.spec.dependents, 4);
  EXPECT_EQ(core::describe(serial, false), core::describe(parallel, false))
      << "seed " << GetParam();
}

TEST_P(DifferentialFuzz, EnginesAgreeOnAdjointGradients) {
  const Harness h = randomHarness(GetParam());
  const unsigned seed = GetParam() * 101 + 3;

  ExecOptions tree;
  tree.engine = ExecEngine::TreeWalk;
  ExecOptions byte;
  byte.engine = ExecEngine::Bytecode;
  ExecOptions omp;
  omp.engine = ExecEngine::Bytecode;
  omp.mode = ExecMode::OpenMP;
  omp.numThreads = 4;

  auto gTree = adjointGradients(h, AdjointMode::FormAD, tree, seed);
  auto gByte = adjointGradients(h, AdjointMode::FormAD, byte, seed);
  auto gOmp = adjointGradients(h, AdjointMode::FormAD, omp, seed);

  ASSERT_EQ(gTree.size(), gByte.size());
  ASSERT_EQ(gTree.size(), gOmp.size());
  ASSERT_FALSE(gTree.empty());
  size_t nonzero = 0;
  for (const auto& [name, tv] : gTree)
    for (double x : tv)
      if (x != 0.0) ++nonzero;
  EXPECT_GT(nonzero, 0u) << "seed " << GetParam()
                         << " produced an all-zero gradient — the "
                            "comparison below would be vacuous";
  for (const auto& [name, tv] : gTree) {
    const auto& bv = gByte.at(name);
    const auto& ov = gOmp.at(name);
    ASSERT_EQ(tv.size(), bv.size()) << name;
    ASSERT_EQ(tv.size(), ov.size()) << name;
    for (size_t i = 0; i < tv.size(); ++i) {
      EXPECT_LT(relDiff(tv[i], bv[i]), 1e-12)
          << "seed " << GetParam() << " " << name << "[" << i
          << "] treewalk vs bytecode";
      EXPECT_LT(relDiff(tv[i], ov[i]), 1e-12)
          << "seed " << GetParam() << " " << name << "[" << i
          << "] serial vs openmp";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range(1u, 201u));

}  // namespace
}  // namespace formad::testing
