// Exact integer feasibility (Hermite normal form) — unit and property
// tests, including the joint infeasibilities the gcd filter misses.
#include <gtest/gtest.h>

#include <random>

#include "smt/hnf.h"
#include "smt/solver.h"

namespace formad::smt {
namespace {

IntRow row(std::vector<long long> coeffs, long long rhs) {
  IntRow r;
  r.coeffs = std::move(coeffs);
  r.rhs = rhs;
  return r;
}

TEST(Hnf, EmptyAndTrivial) {
  EXPECT_TRUE(integerSolvable({}));
  EXPECT_TRUE(integerSolvable({row({0, 0}, 0)}));
  EXPECT_FALSE(integerSolvable({row({0, 0}, 3)}));
}

TEST(Hnf, SingleRowGcd) {
  EXPECT_TRUE(integerSolvable({row({2, 4}, 6)}));
  EXPECT_FALSE(integerSolvable({row({2, 4}, 3)}));
  EXPECT_TRUE(integerSolvable({row({3, 5}, 1)}));  // gcd(3,5)=1
}

TEST(Hnf, JointInfeasibilityBeyondGcd) {
  // x + y = 1, x - y = 2  =>  2x = 3: each row gcd-clean, jointly infeasible.
  EXPECT_FALSE(integerSolvable({row({1, 1}, 1), row({1, -1}, 2)}));
  // x + y = 1, x - y = 3  =>  x = 2, y = -1: feasible.
  EXPECT_TRUE(integerSolvable({row({1, 1}, 1), row({1, -1}, 3)}));
}

TEST(Hnf, RationalInconsistency) {
  EXPECT_FALSE(integerSolvable({row({1, 2}, 1), row({2, 4}, 3)}));
  EXPECT_TRUE(integerSolvable({row({1, 2}, 1), row({2, 4}, 2)}));
}

TEST(Hnf, UnderdeterminedSystems) {
  EXPECT_TRUE(integerSolvable({row({6, 10, 15}, 1)}));  // gcd(6,10,15)=1
  EXPECT_TRUE(integerSolvable({row({2, 3, 0}, 5), row({0, 0, 7}, 14)}));
}

TEST(Hnf, PropertyAgainstBruteForce) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> coeff(-4, 4);
  std::uniform_int_distribution<int> nr(1, 3);
  int infeasibleSeen = 0;
  for (int trial = 0; trial < 500; ++trial) {
    int m = nr(rng);
    std::vector<IntRow> rows;
    for (int r = 0; r < m; ++r)
      rows.push_back(
          row({coeff(rng), coeff(rng), coeff(rng)}, coeff(rng)));

    bool brute = false;
    for (int a = -24 ; a <= 24 && !brute; ++a)
      for (int b = -24; b <= 24 && !brute; ++b)
        for (int c = -24; c <= 24 && !brute; ++c) {
          bool ok = true;
          for (const auto& rw : rows)
            ok = ok && (rw.coeffs[0] * a + rw.coeffs[1] * b +
                            rw.coeffs[2] * c ==
                        rw.rhs);
          brute = ok;
        }

    bool hnf = integerSolvable(rows);
    // Brute force over a box is one-directional: a box solution must be
    // accepted. The converse (HNF says solvable but the box is empty) can
    // legitimately happen for solutions outside the box — verify HNF's
    // claim by checking divisibility structure instead: re-run on a
    // doubled box only when they disagree.
    if (brute) {
      EXPECT_TRUE(hnf) << "trial " << trial;
    } else if (hnf) {
      bool wide = false;
      for (int a = -60; a <= 60 && !wide; ++a)
        for (int b = -60; b <= 60 && !wide; ++b)
          for (int c = -60; c <= 60 && !wide; ++c) {
            bool ok = true;
            for (const auto& rw : rows)
              ok = ok && (rw.coeffs[0] * a + rw.coeffs[1] * b +
                              rw.coeffs[2] * c ==
                          rw.rhs);
            wide = ok;
          }
      EXPECT_TRUE(wide) << "HNF claims solvable but none found, trial "
                        << trial;
    } else {
      ++infeasibleSeen;
    }
  }
  EXPECT_GT(infeasibleSeen, 0);  // the distribution produces real negatives
}

TEST(Hnf, DenseRowsClearsDenominators) {
  AtomTable atoms;
  AtomId x = atoms.internVar("x", 0, false);
  AtomId y = atoms.internVar("y", 0, false);
  // x/2 + y/3 - 1 = 0  ->  3x + 2y = 6.
  LinExpr e = LinExpr::atom(x, Rational(1, 2)) +
              LinExpr::atom(y, Rational(1, 3)) + LinExpr(Rational(-1));
  std::vector<IntRow> rows;
  auto cols = denseRows({&e}, rows);
  ASSERT_EQ(cols.size(), 2u);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].coeffs[0], 3);
  EXPECT_EQ(rows[0].coeffs[1], 2);
  EXPECT_EQ(rows[0].rhs, 6);
}

TEST(SolverWithHnf, JointIntegerInfeasibilityDetected) {
  AtomTable atoms;
  AtomId x = atoms.internVar("x", 0, false);
  AtomId y = atoms.internVar("y", 0, false);
  Solver solver(atoms);
  // x + y = 1 and x - y = 2 have a rational solution (1.5, -0.5) but no
  // integer one: the pre-HNF solver answered Sat here.
  solver.add(Constraint::eq(LinExpr::atom(x) + LinExpr::atom(y),
                            LinExpr(Rational(1))));
  solver.add(Constraint::eq(LinExpr::atom(x) - LinExpr::atom(y),
                            LinExpr(Rational(2))));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
}

TEST(SolverWithHnf, StrideParityProof) {
  // A FormAD-flavoured corollary: on a stride-2 loop writing u[2i] and
  // u[2i'+1]... the offsets 2i and 2i'+1 can never meet (parity), which
  // needs exactly the integer reasoning HNF provides:
  // assert 2i = 2i' + 1 -> Unsat.
  AtomTable atoms;
  AtomId i = atoms.internVar("i", 0, false);
  AtomId ip = atoms.internVar("i", 0, true);
  Solver solver(atoms);
  solver.add(Constraint::eq(LinExpr::atom(i).scaled(Rational(2)),
                            LinExpr::atom(ip).scaled(Rational(2)) +
                                LinExpr(Rational(1))));
  EXPECT_EQ(solver.check(), CheckResult::Unsat);
}

}  // namespace
}  // namespace formad::smt
