// Property-based validation of the AD engine: random kernels drawn from
// the DSL grammar (parallel loops with nested serial loops and branches,
// increments and overwrites, 1-D and 2-D arrays, nonlinear intrinsics,
// scalar locals) must satisfy the dot-product identity between forward
// and reverse mode in every safeguard mode, and their tapes must drain.
#include <gtest/gtest.h>


#include "helpers.h"

namespace formad::testing {
namespace {

using driver::AdjointMode;
using exec::ExecMode;
using exec::ExecOptions;

class RandomKernels : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomKernels, DotProductHoldsInAllModes) {
  Harness h = randomHarness(GetParam());
  SCOPED_TRACE(h.spec.source);
  for (AdjointMode mode : {AdjointMode::Serial, AdjointMode::Plain,
                           AdjointMode::Atomic, AdjointMode::Reduction,
                           AdjointMode::FormAD}) {
    EXPECT_LT(dotProductError(h, mode, ExecOptions{ExecMode::Serial, 1},
                              GetParam()),
              1e-9)
        << "mode " << driver::to_string(mode);
  }
  EXPECT_LT(dotProductError(h, AdjointMode::FormAD,
                            ExecOptions{ExecMode::OpenMP, 3}, GetParam()),
            1e-9);
}

TEST_P(RandomKernels, FiniteDifferenceSpotCheck) {
  Harness h = randomHarness(GetParam());
  SCOPED_TRACE(h.spec.source);
  EXPECT_LT(finiteDifferenceError(h, AdjointMode::FormAD, 4, GetParam()),
            5e-5);
}

TEST_P(RandomKernels, AnalysisProvesWhatIsProvable) {
  // u and w are only ever accessed at the loop counter (dimension rule or
  // counter disequality proves them). v is accessed through the
  // permutation c: its adjoint increments are provable exactly when the
  // kernel also *writes* v[c[i]] somewhere (that write is the knowledge
  // source). A v-read-only kernel is correctly — conservatively —
  // rejected, like the paper's LBM: the permutation property of c is
  // dynamic information the static analysis cannot know.
  // (Verdicts for v can also legitimately depend on *where* the write
  // sits: a write inside one branch provides no knowledge to reads in a
  // sibling branch — the Sec. 5.1 context rules — so v is only asserted
  // when it is never read at all.)
  Harness h = randomHarness(GetParam());
  SCOPED_TRACE(h.spec.source);
  auto k = h.parse();
  auto analysis = driver::analyze(*k, h.spec.independents, h.spec.dependents);
  for (const auto& r : analysis.regions) {
    for (const auto& v : r.vars) {
      if (v.var == "v") continue;
      EXPECT_TRUE(v.safe) << v.var << " flagged unsafe; pair "
                          << v.firstUnsafePair;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernels,
                         ::testing::Range(1u, 25u));

}  // namespace
}  // namespace formad::testing
