// Property-based validation of the AD engine: random kernels drawn from
// the DSL grammar (parallel loops with nested serial loops and branches,
// increments and overwrites, 1-D and 2-D arrays, nonlinear intrinsics,
// scalar locals) must satisfy the dot-product identity between forward
// and reverse mode in every safeguard mode, and their tapes must drain.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "helpers.h"
#include "kernels/data.h"

namespace formad::testing {
namespace {

using driver::AdjointMode;
using exec::ExecMode;
using exec::ExecOptions;

/// Generates a random kernel over fixed parameters:
///   n: int, u: real[] inout, v: real[] inout, w: real[,] inout,
///   r: real[] in (read-only), c: int[] in (a permutation of 0..N-1).
/// Parallel iterations only touch row/column i (plus read-only data), so
/// every generated kernel is correctly parallelized by construction.
class KernelGen {
 public:
  explicit KernelGen(unsigned seed) : rng_(seed) {}

  std::string generate() {
    body_.str("");
    locals_ = 0;
    emitParallelLoop();
    std::ostringstream k;
    k << "kernel randk(n: int in, u: real[] inout, v: real[] inout, "
         "w: real[,] inout, r: real[] in, c: int[] in) {\n"
      << body_.str() << "}\n";
    return k.str();
  }

 private:
  std::mt19937_64 rng_;
  std::ostringstream body_;
  int locals_ = 0;
  std::vector<std::string> liveLocals_;

  int pick(int n) {
    return static_cast<int>(std::uniform_int_distribution<int>(0, n - 1)(rng_));
  }
  double coef() {
    return std::uniform_real_distribution<double>(0.25, 1.75)(rng_);
  }

  /// A random real-valued expression over row i / inner counter k.
  std::string expr(const std::string& i, int depth) {
    switch (depth > 0 ? pick(7) : pick(4)) {
      case 0: return "u[" + i + "]";
      case 1: return "r[" + i + "]";
      case 2: return "v[c[" + i + "]]";
      case 3: {
        std::ostringstream os;
        os << coef();
        std::string s = os.str();
        return s.find('.') == std::string::npos ? s + ".0" : s;
      }
      case 4:
        return "(" + expr(i, depth - 1) + " + " + expr(i, depth - 1) + ")";
      case 5:
        return "(" + expr(i, depth - 1) + " * " + expr(i, depth - 1) + ")";
      default:
        switch (pick(3)) {
          case 0: return "sin(" + expr(i, depth - 1) + ")";
          case 1: return "tanh(" + expr(i, depth - 1) + ")";
          default: return "exp(0.1 * " + expr(i, depth - 1) + ")";
        }
    }
  }

  void emitStmt(const std::string& i, int indent) {
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    switch (pick(6)) {
      case 0:  // increment of u at own row
        body_ << pad << "u[" << i << "] += " << expr(i, 1) << ";\n";
        break;
      case 1:  // overwrite of v at the permuted index (own element)
        body_ << pad << "v[c[" << i << "]] = " << expr(i, 1) << ";\n";
        break;
      case 2: {  // 2-D access in own column
        body_ << pad << "w[" << pick(3) << ", " << i
              << "] = " << expr(i, 1) << ";\n";
        break;
      }
      case 3: {  // scalar local chain
        std::string t = "t" + std::to_string(locals_++);
        body_ << pad << "var " << t << ": real = " << expr(i, 2) << ";\n";
        body_ << pad << "u[" << i << "] += " << t << " * "
              << expr(i, 0) << ";\n";
        break;
      }
      case 4:  // branch on read-only data
        body_ << pad << "if (c[" << i << "] % 2 == 0) {\n";
        emitStmt(i, indent + 1);
        body_ << pad << "} else {\n";
        emitStmt(i, indent + 1);
        body_ << pad << "}\n";
        break;
      default:  // self-scaling overwrite (tests the tmpb pattern)
        body_ << pad << "u[" << i << "] = 0.5 * u[" << i << "] + "
              << expr(i, 1) << ";\n";
        break;
    }
  }

  void emitParallelLoop() {
    body_ << "  parallel for i = 0 : n - 1 {\n";
    int stmts = 2 + pick(3);
    for (int s = 0; s < stmts; ++s) emitStmt("i", 2);
    if (pick(2) == 0) {
      // nested serial loop over a few repetitions
      body_ << "    for k = 0 : 2 {\n";
      emitStmt("i", 3);
      body_ << "    }\n";
    }
    body_ << "  }\n";
  }
};

Harness randomHarness(unsigned seed) {
  KernelGen gen(seed);
  Harness h;
  h.spec.name = "randk";
  h.spec.source = gen.generate();
  h.spec.independents = {"u", "v"};
  h.spec.dependents = {"u", "v", "w"};
  const long long n = 64;
  h.bind = [n, seed](exec::Inputs& io) {
    kernels::Rng rng(seed * 17 + 5);
    io.bindInt("n", n);
    auto& u = io.bindArray("u", exec::ArrayValue::reals({n}));
    kernels::fillUniform(u, rng, 0.2, 0.8);
    auto& v = io.bindArray("v", exec::ArrayValue::reals({n}));
    kernels::fillUniform(v, rng, 0.2, 0.8);
    auto& w = io.bindArray("w", exec::ArrayValue::reals({3, n}));
    kernels::fillUniform(w, rng, 0.2, 0.8);
    auto& r = io.bindArray("r", exec::ArrayValue::reals({n}));
    kernels::fillUniform(r, rng, 0.2, 0.8);
    auto& c = io.bindArray("c", exec::ArrayValue::ints({n}));
    std::vector<long long> perm(static_cast<size_t>(n));
    for (long long i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    std::shuffle(perm.begin(), perm.end(), rng);
    c.intData() = perm;
  };
  return h;
}

class RandomKernels : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomKernels, DotProductHoldsInAllModes) {
  Harness h = randomHarness(GetParam());
  SCOPED_TRACE(h.spec.source);
  for (AdjointMode mode : {AdjointMode::Serial, AdjointMode::Plain,
                           AdjointMode::Atomic, AdjointMode::Reduction,
                           AdjointMode::FormAD}) {
    EXPECT_LT(dotProductError(h, mode, ExecOptions{ExecMode::Serial, 1},
                              GetParam()),
              1e-9)
        << "mode " << driver::to_string(mode);
  }
  EXPECT_LT(dotProductError(h, AdjointMode::FormAD,
                            ExecOptions{ExecMode::OpenMP, 3}, GetParam()),
            1e-9);
}

TEST_P(RandomKernels, FiniteDifferenceSpotCheck) {
  Harness h = randomHarness(GetParam());
  SCOPED_TRACE(h.spec.source);
  EXPECT_LT(finiteDifferenceError(h, AdjointMode::FormAD, 4, GetParam()),
            5e-5);
}

TEST_P(RandomKernels, AnalysisProvesWhatIsProvable) {
  // u and w are only ever accessed at the loop counter (dimension rule or
  // counter disequality proves them). v is accessed through the
  // permutation c: its adjoint increments are provable exactly when the
  // kernel also *writes* v[c[i]] somewhere (that write is the knowledge
  // source). A v-read-only kernel is correctly — conservatively —
  // rejected, like the paper's LBM: the permutation property of c is
  // dynamic information the static analysis cannot know.
  // (Verdicts for v can also legitimately depend on *where* the write
  // sits: a write inside one branch provides no knowledge to reads in a
  // sibling branch — the Sec. 5.1 context rules — so v is only asserted
  // when it is never read at all.)
  Harness h = randomHarness(GetParam());
  SCOPED_TRACE(h.spec.source);
  auto k = h.parse();
  auto analysis = driver::analyze(*k, h.spec.independents, h.spec.dependents);
  for (const auto& r : analysis.regions) {
    for (const auto& v : r.vars) {
      if (v.var == "v") continue;
      EXPECT_TRUE(v.safe) << v.var << " flagged unsafe; pair "
                          << v.firstUnsafePair;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernels,
                         ::testing::Range(1u, 25u));

}  // namespace
}  // namespace formad::testing
