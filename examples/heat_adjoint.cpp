// Domain example: adjoint of a time-dependent PDE solve.
//
// Integrates the 1-D heat equation for T explicit steps and computes the
// sensitivity of a terminal-time objective w.r.t. the *initial* condition
// with one checkpointed backward pass — the standard inverse-design /
// data-assimilation workflow that motivates reverse-mode AD (paper
// Sec. 4.1), stacked on top of FormAD-verified parallel step adjoints.
#include <cmath>
#include <iostream>

#include "driver/driver.h"
#include "driver/report.h"
#include "exec/checkpoint.h"
#include "exec/interp.h"
#include "formad/formad.h"
#include "parser/parser.h"

int main() {
  using namespace formad;

  auto primal = parser::parseKernel(R"(
kernel heat(n: int in, dt: real in, u: real[] inout, tmp: real[] inout) {
  parallel for i = 1 : n - 2 {
    tmp[i] = u[i] + dt * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
  }
  parallel for i2 = 1 : n - 2 {
    u[i2] = tmp[i2];
  }
}
)");

  // FormAD proves both loops of the step safe (pure stencil accesses), so
  // the per-step adjoint runs without atomics.
  auto analysis = driver::analyze(*primal, {"u"}, {"u"});
  std::cout << core::describe(analysis) << "\n";
  auto dr = driver::differentiate(*primal, {"u"}, {"u"},
                                  driver::AdjointMode::FormAD);

  const long long n = 2000;
  const int steps = 400;
  exec::Inputs io;
  io.bindInt("n", n);
  io.bindReal("dt", 0.24);
  auto& u = io.bindArray("u", exec::ArrayValue::reals({n}));
  for (long long i = 0; i < n; ++i)
    u.realAt(i) = std::exp(-0.001 * std::pow(static_cast<double>(i - n / 2), 2));
  std::vector<double> u0 = u.realData();
  io.bindArray("tmp", exec::ArrayValue::reals({n}));

  // Objective: the temperature at a sensor location at final time.
  const long long sensor = n / 3;
  auto& ub = io.bindArray("ub", exec::ArrayValue::reals({n}));
  ub.realAt(sensor) = 1.0;
  io.bindArray("tmpb", exec::ArrayValue::reals({n}));

  exec::TimeLoopOptions opts;
  opts.steps = steps;
  opts.exec = {exec::ExecMode::OpenMP, 2};
  auto stats =
      exec::runTimeLoopAdjoint(*primal, *dr.adjoint, io, {"u", "tmp"}, opts);

  std::cout << "checkpointed adjoint of " << steps << " heat steps on " << n
            << " points:\n";
  driver::Table t({"metric", "value"});
  t.addRow({"snapshots taken", std::to_string(stats.snapshotsTaken)});
  t.addRow({"snapshot memory",
            std::to_string(stats.snapshotBytes / 1024) + " KiB"});
  t.addRow({"primal steps run (fwd + replay)",
            std::to_string(stats.primalStepsRun)});
  t.addRow({"adjoint steps run", std::to_string(stats.adjointStepsRun)});
  std::cout << t.str() << "\n";

  // The gradient dJ/du0: a diffused bump centered at the sensor.
  std::cout << "dJ/du0 around the sensor (every 40th point):\n  ";
  for (long long i = sensor - 200; i <= sensor + 200; i += 40)
    std::cout << driver::fmt(io.array("ub").realAt(i), 5) << " ";
  std::cout << "\n\nFinite-difference check at the sensor's initial point: ";
  auto objective = [&](double delta) {
    exec::Inputs p;
    p.bindInt("n", n);
    p.bindReal("dt", 0.24);
    auto& uu = p.bindArray("u", exec::ArrayValue::reals({n}));
    uu.realData() = u0;
    uu.realAt(sensor) += delta;
    p.bindArray("tmp", exec::ArrayValue::reals({n}));
    exec::Executor ex(*primal);
    for (int s = 0; s < steps; ++s) (void)ex.run(p);
    return p.array("u").realAt(sensor);
  };
  double fd = (objective(1e-6) - objective(-1e-6)) / 2e-6;
  std::cout << "adjoint " << driver::fmt(io.array("ub").realAt(sensor), 8)
            << " vs FD " << driver::fmt(fd, 8) << "\n";
  return 0;
}
