// Domain example: adjoint of an unstructured finite-volume gradient
// operator (paper Sec. 7.4). Shows the full production flow:
//   mesh + coloring -> DSL kernel -> FormAD analysis -> adjoint ->
//   mesh sensitivities, with a finite-difference spot check.
#include <cmath>
#include <iostream>

#include "driver/driver.h"
#include "driver/report.h"
#include "exec/interp.h"
#include "formad/formad.h"
#include "kernels/greengauss.h"
#include "parser/parser.h"

int main() {
  using namespace formad;

  auto spec = kernels::greenGaussSpec();
  auto primal = parser::parseKernel(spec.source);

  // FormAD proves the colored edge loop safe despite the data-dependent
  // node indices (edge2nodes), because the coloring that makes the primal
  // race-free makes the adjoint race-free too.
  auto analysis = driver::analyze(*primal, spec.independents, spec.dependents);
  std::cout << core::describe(analysis) << "\n";

  auto adj = driver::differentiate(*primal, spec.independents,
                                   spec.dependents,
                                   driver::AdjointMode::FormAD);

  // Objective: J = sum_k w_k grad[k] with node weights w_k (a uniform sum
  // would telescope to zero on this mesh: every edge adds and subtracts
  // the same flux). One adjoint run yields dJ/d dv for every node.
  kernels::GreenGaussConfig cfg;
  cfg.nodes = 5000;
  auto weight = [](long long k) {
    return 0.25 + 0.5 * static_cast<double>(k % 7);
  };
  exec::Inputs io;
  kernels::Rng rng(7);
  kernels::bindGreenGauss(io, cfg, rng);
  io.bindArray("dvb", exec::ArrayValue::reals({cfg.nodes}));
  auto& gradb = io.bindArray("gradb", exec::ArrayValue::reals({cfg.nodes}));
  for (long long k = 0; k < cfg.nodes; ++k) gradb.realAt(k) = weight(k);

  exec::Executor ex(*adj.adjoint);
  (void)ex.run(io, {exec::ExecMode::OpenMP, 2});

  // Finite-difference spot check on node 17.
  auto objective = [&](double delta) {
    exec::Inputs p;
    kernels::Rng r2(7);
    kernels::bindGreenGauss(p, cfg, r2);
    p.array("dv").realAt(17) += delta;
    exec::Executor pex(*primal);
    (void)pex.run(p);
    double J = 0;
    const auto& grad = p.array("grad").realData();
    for (long long k = 0; k < cfg.nodes; ++k)
      J += weight(k) * grad[static_cast<size_t>(k)];
    return J;
  };
  double fd = (objective(1e-6) - objective(-1e-6)) / 2e-6;
  double adjVal = io.array("dvb").realAt(17);

  driver::Table t({"quantity", "value"});
  t.addRow({"dJ/d dv[17] (adjoint)", driver::fmt(adjVal, 9)});
  t.addRow({"dJ/d dv[17] (finite diff)", driver::fmt(fd, 9)});
  t.addRow({"rel. difference",
            driver::fmt(std::fabs(adjVal - fd) /
                            std::max(1.0, std::fabs(fd)), 12)});
  std::cout << t.str();

  // The adjoint of this kernel needs no tape at all: the node indices are
  // recomputed per iteration and the branch condition is re-evaluated.
  std::cout << "\nThe generated adjoint is tape-free and atomic-free; all\n"
               "sensitivities of the " << cfg.nodes
            << "-node mesh come from one adjoint sweep.\n";
  return 0;
}
