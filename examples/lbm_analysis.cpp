// Domain example: why FormAD (correctly) rejects the LBM kernel
// (paper Sec. 7.3), reproducing the paper's listing of the knowledge set —
// the 19 "known safe write expressions" of the form
//     (w_0 + n_cell_entries_0*-1 + i_0)
//     (se_0 + n_cell_entries_0*-119 + i_0)
//     ...
// and the offending adjoint increment  eb_0 + n_cell_entries_0*0 + i_0
// that is not contained in it.
#include <iostream>
#include <set>

#include "analysis/activity.h"
#include "analysis/symbols.h"
#include "formad/knowledge.h"
#include "ir/traversal.h"
#include "kernels/lbm.h"
#include "parser/parser.h"

int main() {
  using namespace formad;

  auto spec = kernels::lbmSpec();
  auto kernel = parser::parseKernel(spec.source);
  analysis::SymbolTable syms = analysis::verifyKernel(*kernel);
  analysis::Activity act = analysis::computeActivity(
      *kernel, syms, spec.independents, spec.dependents);

  const ir::For* loop = nullptr;
  ir::forEachStmt(kernel->body, [&](const ir::Stmt& s) {
    if (s.kind() == ir::StmtKind::For && s.as<ir::For>().parallel)
      loop = &s.as<ir::For>();
  });

  core::RegionModel model =
      core::buildRegionModel(*kernel, *loop, syms, act);

  // The set of known-safe write expressions (deduplicated, unprimed side).
  std::set<std::string> writes;
  for (const auto& ka : model.knowledge)
    writes.insert(model.atoms->render(ka.other));
  std::cout << "FormAD simplifies the expressions and builds a set of known"
               " safe write\nexpressions (paper Sec. 7.3):\n\n";
  for (const auto& w : writes) std::cout << "  (" << w << ")\n";

  std::cout << "\nModel size: " << model.modelSize() << " assertions ("
            << "1 + e^2 with e = " << model.uniqueExprs << ")\n";

  // The questions for srcgrid: its reads at the cell's own entries.
  std::cout << "\nAdjoint increments to srcgridb target expressions like:\n";
  int shown = 0;
  for (const auto& vq : model.questions) {
    if (vq.var != "srcgrid") continue;
    std::set<std::string> qs;
    for (const auto& p : vq.pairs) qs.insert(model.atoms->render(p.other));
    for (const auto& q : qs) {
      std::cout << "  (" << q << ")\n";
      if (++shown == 4) break;
    }
  }
  std::cout << "  ...\n\nAt least one of them (e.g. the eb entry) is not "
               "contained in the safe write\nset, so FormAD considers the "
               "access to srcgrid unsafe and keeps the\nsafeguards — no "
               "change to the generated code, matching the paper.\n";
  return 0;
}
