// Domain example: compact-stencil adjoints (paper Sec. 7.1) end to end —
// differentiate, check FormAD removed every safeguard, then use the
// simulated testbed to print a miniature scaling study for any radius.
#include <cstdlib>
#include <iostream>

#include "driver/driver.h"
#include "driver/report.h"
#include "exec/costmodel.h"
#include "exec/interp.h"
#include "ir/printer.h"
#include "kernels/stencil.h"
#include "parser/parser.h"
#include "support/flags.h"

int main(int argc, char** argv) {
  using namespace formad;
  int radius = 3;
  if (argc > 1) {
    try {
      radius = static_cast<int>(
          support::parseIntFlag("radius", argv[1], 1, 64, "a stencil radius"));
    } catch (const Error& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }
  const long long n = 200000;

  auto spec = kernels::stencilSpec(radius);
  auto primal = parser::parseKernel(spec.source);
  std::cout << "compact stencil of radius " << radius << " ("
            << 2 * radius + 1 << "-point):\n"
            << spec.source << "\n";

  auto dr = driver::differentiate(*primal, spec.independents, spec.dependents,
                                  driver::AdjointMode::FormAD,
                                  /*omitTapeFreePrimalSweep=*/true);
  std::cout << "FormAD adjoint (tape-free, safeguard-free):\n"
            << ir::printKernel(*dr.adjoint) << "\n";

  // Profile one sweep and simulate the scaling on the paper's testbed.
  exec::Inputs io;
  kernels::Rng rng(1);
  kernels::bindStencil(io, radius, n, rng);
  for (const auto& [p, pb] : dr.adjointParams) {
    const auto& a = io.array(p);
    std::vector<long long> dims;
    for (int k = 0; k < a.rank(); ++k) dims.push_back(a.dim(k));
    io.bindArray(pb, exec::ArrayValue::reals(dims)).fill(1.0);
  }
  exec::Executor ex(*dr.adjoint);
  auto st = ex.run(io, {exec::ExecMode::Profile, 1});

  exec::CostParams params;
  driver::Table t({"threads", "adjoint sweep [ms]", "speedup"});
  double serial = exec::serialTime(st.profile, params) * 1e3;
  for (int threads : {1, 2, 4, 8, 18}) {
    double ms = exec::runTime(st.profile, params, threads) * 1e3;
    t.addRow({std::to_string(threads), driver::fmt(ms, 3),
              driver::fmtSpeedup(serial / ms)});
  }
  std::cout << t.str();
  return 0;
}
