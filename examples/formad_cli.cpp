// formad_cli: a Tapenade-style command-line front end.
//
//   formad_cli <file.fad> -head <kernel> -indep a,b -dep c [-mode MODE]
//              [-analyze-only] [-emit-c]
//
// Reads a DSL source file, runs the FormAD analysis, and prints the
// generated adjoint kernel (DSL by default, a compilable C translation
// unit with -emit-c). MODE is one of: formad (default), atomic,
// reduction, serial, plain, tangent.
//
// -engine bytecode|treewalk selects the execution engine (see
// exec/interp.h); with the bytecode engine, -disasm prints the compiled
// register-VM listing of the generated kernel to stderr.
//
// -racecheck runs the static primal race checker (racecheck/) before
// differentiating: a proven race aborts with the counterexample witness;
// an inconclusive verdict is reported as a warning. With -racecheck-only
// the verdict report is printed and nothing is differentiated.
// -bind n=v,m=w pins never-written integer parameters to concrete values
// for the checker; -coloring a,b declares conflict-free coloring arrays.
//
// -fastpath off|syntactic|full selects the tiered disjointness deciders
// consulted before the full solver (default full). Every fast verdict is
// exact, so the setting changes speed and the tier breakdown only — never
// any verdict or report.
//
// -solver-budget N|unlimited caps each solver check at N deterministic
// internal steps (checks that run out degrade to atomic adjoints /
// undecided race pairs); -deadline-ms N puts a wall-clock deadline on each
// region's analysis (liveness only — degraded, never hung).
//
// -cache-dir <path> persists solver verdicts to a cross-run
// content-addressed store: a repeat invocation on an unchanged kernel is
// answered from disk with zero tier-2 solver checks, and after an edit
// only the contexts whose fingerprints moved are re-proven. Serving is
// verdict-neutral — every report and the generated adjoint are
// byte-identical with or without the flag. -cache-stats prints the
// per-region cache breakdown (core::describeCache) plus store-level IO
// counters to stderr.
//
// -absint on|off (default off) runs the abstract interpreter (src/absint/)
// before analysis: sound interval/stride invariants are injected into the
// knowledge base and guide the t1-absint fast-path decider. Solver work
// shifts to cheaper tiers; verdicts can only improve (a stride invariant
// may prove a collision pair SAFE that the seed model cannot), never
// weaken, and off is byte-identical to the seed.
//
// -lint runs the standalone static linter (absint/lint.h) over the head
// kernel (or every kernel when -head is omitted), prints the findings, and
// exits 1 iff anything was flagged. Solver-free; -pin values are honored.
//
// -pin name=value (repeatable) pins one never-written integer parameter,
// merging into the same pin set as -bind; consumed by the race checker,
// the abstract interpreter, and the linter.
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "absint/lint.h"
#include "ad/forward.h"
#include "codegen/cgen.h"
#include "driver/driver.h"
#include "exec/bytecode.h"
#include "exec/kernel_info.h"
#include "formad/formad.h"
#include "ir/printer.h"
#include "parser/parser.h"
#include "racecheck/racecheck.h"
#include "smt/diskcache.h"
#include "support/flags.h"

using namespace formad;

namespace {

std::vector<std::string> splitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage() {
  std::cerr
      << "usage: formad_cli <file> -head <kernel> -indep a,b -dep c\n"
         "                  [-mode formad|hybrid|atomic|reduction|serial|"
         "plain|tangent]\n"
         "                  [-safeguard formad|hybrid|atomic|reduction]\n"
         "                      (safeguard strategy — alias of the matching "
         "-mode;\n"
         "                       hybrid guards residual unproven increments "
         "per access site)\n"
         "                  [-engine bytecode|treewalk] [-disasm]\n"
         "                  [-analyze-only]\n"
         "                  [-racecheck] [-racecheck-only]\n"
         "                  [-bind name=value,...] [-coloring array,...]\n"
         "                  [-analysis-threads N]   (0 = auto-detect)\n"
         "                  [-fastpath off|syntactic|full]   (default full)\n"
         "                  [-solver-budget N|unlimited]   (steps per check)\n"
         "                  [-deadline-ms N]   (per-region analysis "
         "deadline)\n"
         "                  [-cache-dir <path>]   (persistent verdict "
         "cache)\n"
         "                  [-cache-stats]   (print cache breakdown to "
         "stderr)\n"
         "                  [-absint on|off]   (abstract-interpretation "
         "invariants; default off)\n"
         "                  [-lint]   (static bounds/race linter; exit 1 "
         "iff findings)\n"
         "                  [-pin name=value]   (repeatable parameter pin "
         "for -lint/-absint/racecheck)\n";
  return 2;
}

/// Validated integer parse for numeric flag values (support::parseIntFlag
/// with the CLI exit convention): a typo is a diagnosed error printed to
/// stderr followed by the usage exit status, never a silently truncated
/// value.
long long parseIntFlag(const std::string& flag, const std::string& text,
                       long long min, long long max, const char* expected) {
  try {
    return support::parseIntFlag(flag, text, min, max, expected);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
}

/// Parses "-bind n=20,c=0" pin lists.
std::map<std::string, long long> parseBindings(const std::string& s) {
  std::map<std::string, long long> pins;
  for (const std::string& item : splitCommas(s)) {
    size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::cerr << "bad -bind entry '" << item << "' (expected name=value)\n";
      std::exit(2);
    }
    pins[item.substr(0, eq)] =
        parseIntFlag("-bind", item.substr(eq + 1), INT64_MIN, INT64_MAX,
                     "name=value with an integer value");
  }
  return pins;
}

/// Prints the store-level IO counters of the persistent verdict cache
/// (-cache-stats; stable format, golden-testable by the CI smoke job).
void printStoreStats(const smt::PersistentVerdictStore& store) {
  const smt::PersistentVerdictStore::Stats s = store.stats();
  std::cerr << "cache store '" << store.dir() << "': checks " << s.checkHits
            << " hit / " << s.checkMisses << " miss / " << s.checkStores
            << " stored; tasks " << s.taskHits << " hit / " << s.taskMisses
            << " miss / " << s.taskStores << " stored\n";
}

/// Prints the register-VM listing of `kernel` to stderr (-disasm).
void disassemble(const ir::Kernel& kernel) {
  auto clone = kernel.clone();
  exec::KernelInfo info = exec::buildKernelInfo(*clone);
  exec::BytecodeEngine eng(*clone, info);
  std::cerr << eng.disassemble();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string file = argv[1];
  std::string head;
  std::vector<std::string> indeps, deps;
  std::string mode = "formad";
  std::string engine = "bytecode";
  bool analyzeOnly = false;
  bool emitC = false;
  bool disasm = false;
  bool racecheckFlag = false;
  bool racecheckOnly = false;
  int analysisThreads = 0;  // 0 = auto (hardware concurrency)
  smt::FastPathMode fastpath = smt::FastPathMode::Full;
  long long solverBudget = 0;  // steps per solver check; 0 = unlimited
  int deadlineMs = 0;          // per-region analysis deadline; 0 = none
  std::string cacheDir;        // "" = no persistent verdict cache
  bool cacheStats = false;
  bool absintFlag = false;
  bool lintOnly = false;
  racecheck::RaceCheckOptions rcOpts;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-head") head = next();
    else if (arg == "-indep") indeps = splitCommas(next());
    else if (arg == "-dep") deps = splitCommas(next());
    else if (arg == "-mode") mode = next();
    else if (arg == "-safeguard") {
      // Safeguard-strategy spelling of the mode knob (restricted to the
      // strategies that actually guard adjoints).
      mode = next();
      if (mode != "formad" && mode != "hybrid" && mode != "atomic" &&
          mode != "reduction") {
        std::cerr << "bad -safeguard value '" << mode
                  << "' (expected formad, hybrid, atomic, or reduction)\n";
        return 2;
      }
    }
    else if (arg == "-engine") engine = next();
    else if (arg == "-disasm") disasm = true;
    else if (arg == "-analyze-only") analyzeOnly = true;
    else if (arg == "-emit-c") emitC = true;
    else if (arg == "-racecheck") racecheckFlag = true;
    else if (arg == "-racecheck-only") racecheckOnly = true;
    else if (arg == "-bind") rcOpts.paramValues = parseBindings(next());
    else if (arg == "-lint") lintOnly = true;
    else if (arg == "-pin") {
      std::string item = next();
      size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "bad -pin entry '" << item << "' (expected name=value)\n";
        return 2;
      }
      rcOpts.paramValues[item.substr(0, eq)] =
          parseIntFlag("-pin", item.substr(eq + 1), INT64_MIN, INT64_MAX,
                       "name=value with an integer value");
    }
    else if (arg == "-absint" || arg.rfind("-absint=", 0) == 0) {
      std::string v = arg == "-absint" ? next() : arg.substr(8);
      if (v == "on") absintFlag = true;
      else if (v == "off") absintFlag = false;
      else {
        std::cerr << "bad -absint value '" << v
                  << "' (expected on or off)\n";
        return 2;
      }
    }
    else if (arg == "-coloring") {
      for (const std::string& a : splitCommas(next()))
        rcOpts.colorings.insert(a);
    }
    else if (arg == "-analysis-threads") {
      analysisThreads = static_cast<int>(
          parseIntFlag(arg, next(), 0, INT32_MAX,
                       "an integer >= 0; 0 = auto-detect"));
    }
    else if (arg == "-solver-budget") {
      std::string v = next();
      if (v == "unlimited")
        solverBudget = 0;
      else
        solverBudget = parseIntFlag(arg, v, 1, INT64_MAX,
                                    "a step count >= 1, or 'unlimited'");
    }
    else if (arg == "-cache-dir") cacheDir = next();
    else if (arg == "-cache-stats") cacheStats = true;
    else if (arg == "-deadline-ms") {
      deadlineMs = static_cast<int>(parseIntFlag(
          arg, next(), 0, INT32_MAX, "a millisecond count >= 0; 0 = none"));
    }
    else if (arg == "-fastpath" || arg.rfind("-fastpath=", 0) == 0) {
      std::string v = arg == "-fastpath" ? next() : arg.substr(10);
      if (v == "off") fastpath = smt::FastPathMode::Off;
      else if (v == "syntactic") fastpath = smt::FastPathMode::Syntactic;
      else if (v == "full") fastpath = smt::FastPathMode::Full;
      else {
        std::cerr << "bad -fastpath value '" << v
                  << "' (expected off, syntactic, or full)\n";
        return 2;
      }
    }
    else return usage();
  }
  if (engine != "bytecode" && engine != "treewalk") return usage();
  if (disasm && engine != "bytecode") {
    std::cerr << "-disasm requires -engine bytecode (the tree-walker "
                 "interprets the IR directly and has no listing)\n";
    return 2;
  }

  std::ifstream in(file);
  if (!in) {
    std::cerr << "cannot open " << file << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    ir::Program program = parser::parseProgram(buf.str());
    if (head.empty() && program.kernels().size() == 1)
      head = program.kernels()[0]->name;

    if (lintOnly) {
      // Standalone static lint: no solver, no differentiation. Exit 1 iff
      // any linted kernel has findings (the CI smoke job keys off this).
      absint::LintOptions lopts;
      lopts.paramValues = rcOpts.paramValues;
      bool anyFindings = false;
      for (const auto& kp : program.kernels()) {
        if (!head.empty() && kp->name != head) continue;
        absint::LintReport report = absint::lintKernel(*kp, lopts);
        std::cout << report.render();
        anyFindings = anyFindings || !report.clean();
      }
      return anyFindings ? 1 : 0;
    }

    const ir::Kernel& primal = program.get(head);

    // The CLI owns the persistent store (rather than handing the driver a
    // cacheDir) so -cache-stats can read the IO counters afterwards.
    std::unique_ptr<smt::PersistentVerdictStore> store;
    if (!cacheDir.empty())
      store = std::make_unique<smt::PersistentVerdictStore>(cacheDir);

    rcOpts.solverSteps = solverBudget;
    rcOpts.deadlineMs = deadlineMs;
    rcOpts.store = store.get();
    if (racecheckOnly) {
      auto report = racecheck::checkKernelRaces(primal, rcOpts);
      std::cout << report.describe();
      if (cacheStats && store != nullptr) printStoreStats(*store);
      return report.overall() == racecheck::RaceVerdict::Racy ? 1 : 0;
    }

    if (indeps.empty() || deps.empty()) {
      std::cerr << "need -indep and -dep\n";
      return 2;
    }

    if (mode == "tangent") {
      ad::TangentOptions topts;
      topts.independents = indeps;
      topts.dependents = deps;
      auto tr = ad::buildTangent(primal, topts);
      std::cout << (emitC ? codegen::emitC(*tr.tangent)
                          : ir::printKernel(*tr.tangent));
      if (disasm) disassemble(*tr.tangent);
      return 0;
    }

    driver::DriverOptions analyzeOpts;
    // Hybrid analyzes with per-site verdicts so the report shows which
    // access sites stay shared and which need a residual guard.
    if (mode == "hybrid") analyzeOpts.mode = driver::AdjointMode::Hybrid;
    analyzeOpts.analysisThreads = analysisThreads;
    analyzeOpts.fastpath = fastpath;
    analyzeOpts.absint = absintFlag;
    analyzeOpts.racecheck = rcOpts;
    analyzeOpts.solverStepBudget = solverBudget;
    analyzeOpts.analysisDeadlineMs = deadlineMs;
    analyzeOpts.verdictStore = store.get();
    auto analysis = driver::analyze(primal, indeps, deps, analyzeOpts);
    std::cerr << core::describe(analysis);
    std::cerr << core::describeTiers(analysis);
    if (cacheStats) {
      std::cerr << core::describeCache(analysis);
      if (store != nullptr) printStoreStats(*store);
    }
    if (analyzeOnly) return 0;

    driver::DriverOptions dopts;
    if (mode == "formad") dopts.mode = driver::AdjointMode::FormAD;
    else if (mode == "hybrid") dopts.mode = driver::AdjointMode::Hybrid;
    else if (mode == "atomic") dopts.mode = driver::AdjointMode::Atomic;
    else if (mode == "reduction") dopts.mode = driver::AdjointMode::Reduction;
    else if (mode == "serial") dopts.mode = driver::AdjointMode::Serial;
    else if (mode == "plain") dopts.mode = driver::AdjointMode::Plain;
    else return usage();
    dopts.racecheckPrimal = racecheckFlag;
    dopts.racecheck = rcOpts;
    dopts.analysisThreads = analysisThreads;
    dopts.fastpath = fastpath;
    dopts.absint = absintFlag;
    dopts.solverStepBudget = solverBudget;
    dopts.analysisDeadlineMs = deadlineMs;
    dopts.verdictStore = store.get();

    auto dr = driver::differentiate(primal, indeps, deps, dopts);
    if (racecheckFlag) std::cerr << dr.raceReport.describe();
    for (const auto& w : dr.warnings) std::cerr << "warning: " << w << "\n";
    // Hybrid surfaces the builder's per-increment choice (stable format;
    // absent in every other mode, keeping their output byte-identical).
    if (dopts.mode == driver::AdjointMode::Hybrid) {
      auto guardName = [](ir::Guard g) {
        switch (g) {
          case ir::Guard::None: return "shared";
          case ir::Guard::Atomic: return "atomic";
          case ir::Guard::Reduction: return "local-accumulate";
        }
        return "?";
      };
      for (const auto& rep : dr.loopReports) {
        if (rep.siteDecisions.empty()) continue;
        std::cerr << "hybrid safeguards (region counter '"
                  << rep.primalLoop->var << "'):\n";
        for (const auto& d : rep.siteDecisions)
          std::cerr << "  " << d.primalVar << " increment from "
                    << (d.site != nullptr ? ir::printExpr(*d.site)
                                          : std::string("<no provenance>"))
                    << ": " << guardName(d.guard) << "\n";
      }
    }
    std::cout << (emitC ? codegen::emitC(*dr.adjoint)
                        : ir::printKernel(*dr.adjoint));
    if (disasm) disassemble(*dr.adjoint);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
