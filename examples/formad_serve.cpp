// formad_serve: the analysis daemon (DESIGN.md §11).
//
//   formad_serve --stdio [options]
//   formad_serve -socket /path/to.sock [options]
//
// Options:
//   -sessions N           worker sessions answering requests (default 2)
//   -threads N            workers of the ONE shared analysis pool all
//                         sessions draw from (0 = auto: hardware
//                         concurrency minus the sessions). An explicit
//                         width whose total sessions+threads exceeds the
//                         hardware is clamped back to auto with a warning
//                         unless -allow-oversubscribe is passed.
//   -allow-oversubscribe  honor an oversubscribing -threads verbatim
//   -cache-dir DIR        persistent verdict store ("" = memory-only)
//   -max-request-bytes N  frame size limit (default 4 MiB)
//   -solver-budget N      default per-check solver step budget (0 = off)
//   -deadline-ms N        default per-region analysis deadline (0 = off)
//
// Speaks the newline-delimited JSON protocol of src/server/protocol.h:
// one request per line, one response per line, responses in request order
// per connection. --stdio serves stdin/stdout (tests, CI, piping);
// -socket serves concurrent clients over a unix-domain socket. Either
// way the daemon exits after answering a {"op": "shutdown"} request (or,
// in stdio mode, at end of input).

#include <iostream>
#include <limits>
#include <string>

#include "server/server.h"
#include "support/diagnostics.h"
#include "support/flags.h"

using namespace formad;

namespace {

int usage() {
  std::cerr << "usage: formad_serve --stdio | -socket <path>\n"
            << "  [-sessions N] [-threads N] [-allow-oversubscribe]\n"
            << "  [-cache-dir DIR] [-max-request-bytes N] [-solver-budget N] "
               "[-deadline-ms N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool stdio = false;
  std::string socketPath;
  server::ServeOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value after " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto nextInt = [&](long long min, long long max, const char* expected) {
      return support::parseIntFlag(arg, next(), min, max, expected);
    };
    try {
      if (arg == "--stdio") stdio = true;
      else if (arg == "-socket") socketPath = next();
      else if (arg == "-sessions")
        opts.sessions = static_cast<int>(
            nextInt(1, 1 << 10, "a session count in [1, 1024]"));
      else if (arg == "-threads")
        opts.analysisThreads = static_cast<int>(
            nextInt(0, 1 << 16, "a shared-pool worker count (0 = auto)"));
      else if (arg == "-allow-oversubscribe") opts.allowOversubscribe = true;
      else if (arg == "-cache-dir") opts.cacheDir = next();
      else if (arg == "-max-request-bytes")
        opts.maxRequestBytes = static_cast<size_t>(
            nextInt(1, 1LL << 30, "a frame limit in bytes"));
      else if (arg == "-solver-budget")
        opts.defaultSolverBudget =
            nextInt(0, std::numeric_limits<long long>::max(),
                    "a step budget (0 = unlimited)");
      else if (arg == "-deadline-ms")
        opts.defaultDeadlineMs = static_cast<int>(
            nextInt(0, std::numeric_limits<int>::max(),
                    "a deadline in ms (0 = none)"));
      else {
        std::cerr << "unknown flag " << arg << "\n";
        return usage();
      }
    } catch (const Error& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }

  if (stdio != socketPath.empty()) {
    // Exactly one of --stdio / -socket must be chosen.
    return usage();
  }

  try {
    server::AnalysisServer server(opts);
    if (!server.sizingWarning().empty())
      std::cerr << "formad_serve: " << server.sizingWarning() << "\n";
    if (stdio) {
      server::serveStdio(server, std::cin, std::cout);
    } else {
      std::cerr << "formad_serve: listening on " << socketPath << "\n";
      server::serveUnixSocket(server, socketPath);
    }
  } catch (const Error& e) {
    std::cerr << "formad_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
