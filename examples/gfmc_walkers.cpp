// Domain example: GFMC walker propagation (paper Sec. 7.2). Contrasts the
// split kernel (two parallel loops — FormAD proves everything safe) with
// the fused original (GFMC*: the partner-walker read makes crb's adjoint
// increments unprovable, so they stay guarded), and shows the per-loop
// guard decisions plus tape usage of the nonlinear adjoint.
#include <iostream>

#include "driver/driver.h"
#include "driver/report.h"
#include "exec/interp.h"
#include "formad/formad.h"
#include "kernels/gfmc.h"
#include "parser/parser.h"

using namespace formad;

namespace {

void show(const kernels::KernelSpec& spec) {
  auto primal = parser::parseKernel(spec.source);
  std::cout << "=== " << spec.name << " ===\n";
  auto analysis = driver::analyze(*primal, spec.independents, spec.dependents);
  std::cout << core::describe(analysis);

  auto dr = driver::differentiate(*primal, spec.independents, spec.dependents,
                                  driver::AdjointMode::FormAD);
  driver::Table t({"parallel loop", "variable", "guard in FormAD adjoint"});
  int loopIdx = 0;
  for (const auto& rep : dr.loopReports) {
    for (const auto& [var, guard] : rep.decisions) {
      const char* g = guard == ir::Guard::None     ? "shared (no safeguard)"
                      : guard == ir::Guard::Atomic ? "ATOMIC"
                                                   : "reduction";
      t.addRow({"#" + std::to_string(loopIdx), var, g});
    }
    ++loopIdx;
  }
  std::cout << t.str() << "\n";
}

}  // namespace

int main() {
  show(kernels::gfmcSplitSpec());
  show(kernels::gfmcFusedSpec());

  // Run the split adjoint and report tape traffic: the nonlinear spin
  // exchange must save intermediate values (xee/xmm and the overwritten
  // amplitudes), which is why the adjoint costs ~4-5x the primal.
  auto spec = kernels::gfmcSplitSpec();
  auto primal = parser::parseKernel(spec.source);
  auto dr = driver::differentiate(*primal, spec.independents, spec.dependents,
                                  driver::AdjointMode::FormAD);

  kernels::GfmcConfig cfg;
  cfg.ns = 32;
  cfg.nw = 256;
  cfg.npair = 24;
  cfg.nk = 8;
  exec::Inputs io;
  kernels::Rng rng(3);
  kernels::bindGfmc(io, cfg, rng);
  for (const auto& [p, pb] : dr.adjointParams) {
    const auto& a = io.array(p);
    std::vector<long long> dims;
    for (int k = 0; k < a.rank(); ++k) dims.push_back(a.dim(k));
    auto& b = io.bindArray(pb, exec::ArrayValue::reals(dims));
    b.fill(1.0);
  }
  exec::Executor ex(*dr.adjoint);
  auto st = ex.run(io, {exec::ExecMode::OpenMP, 2});
  std::cout << "split adjoint executed on " << cfg.nw << " walkers x "
            << cfg.ns << " spin states\n";
  std::cout << "  peak tape: " << st.tapePeakBytes
            << " bytes, drained: " << (st.tapeDrained ? "yes" : "no") << "\n";
  std::cout << "  d(sum outputs)/d cr[0,0] = "
            << io.array("crb").realAt(0) << "\n";
  return 0;
}
