// Quickstart: differentiate the paper's Fig. 2 loop and see FormAD remove
// the atomic from the adjoint increment.
//
//   parallel for i { y[c[i]] = x[c[i] + 7]; }
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "driver/driver.h"
#include "exec/interp.h"
#include "formad/formad.h"
#include "ir/printer.h"
#include "parser/parser.h"

int main() {
  using namespace formad;

  // 1. Write the primal kernel in the DSL and parse it.
  auto primal = parser::parseKernel(R"(
kernel gather7(n: int in, c: int[] in, x: real[] in, y: real[] inout) {
  parallel for i = 0 : n - 1 {
    y[c[i]] = x[c[i] + 7];
  }
}
)");
  std::cout << "primal:\n" << ir::printKernel(*primal) << "\n";

  // 2. Run the FormAD analysis: assuming the primal is correctly
  //    parallelized, c(i) != c(i') across iterations, hence the adjoint
  //    increments xb[c(i)+7] cannot collide either.
  auto analysis = driver::analyze(*primal, {"x"}, {"y"});
  std::cout << "FormAD verdicts:\n" << core::describe(analysis) << "\n";

  // 3. Generate the adjoint twice: with blanket atomics, and with FormAD.
  auto atomic = driver::differentiate(*primal, {"x"}, {"y"},
                                      driver::AdjointMode::Atomic);
  auto formad = driver::differentiate(*primal, {"x"}, {"y"},
                                      driver::AdjointMode::FormAD);
  std::cout << "adjoint with blanket atomics:\n"
            << ir::printKernel(*atomic.adjoint) << "\n";
  std::cout << "adjoint with FormAD (no safeguards needed):\n"
            << ir::printKernel(*formad.adjoint) << "\n";

  // 4. Execute the FormAD adjoint: seed yb, get dy/dx accumulated in xb.
  const long long n = 8;
  exec::Inputs io;
  io.bindInt("n", n);
  auto& c = io.bindArray("c", exec::ArrayValue::ints({n}));
  for (long long i = 0; i < n; ++i) c.intAt(i) = (3 * i + 1) % n;  // permutation
  auto& x = io.bindArray("x", exec::ArrayValue::reals({n + 7}));
  for (long long i = 0; i < n + 7; ++i) x.realAt(i) = 0.1 * static_cast<double>(i);
  io.bindArray("y", exec::ArrayValue::reals({n}));
  io.bindArray("xb", exec::ArrayValue::reals({n + 7}));
  auto& yb = io.bindArray("yb", exec::ArrayValue::reals({n}));
  yb.fill(1.0);  // d(sum y)/dx

  exec::Executor ex(*formad.adjoint);
  auto stats = ex.run(io, {exec::ExecMode::OpenMP, 2});
  std::cout << "gradient d(sum y)/dx = [ ";
  for (long long i = 0; i < n + 7; ++i) std::cout << io.array("xb").realAt(i) << " ";
  std::cout << "]\n(tape drained: " << (stats.tapeDrained ? "yes" : "no")
            << ")\n";
  return 0;
}
