// Reproduces paper Figures 4 and 6: absolute run time and parallel speedup
// of the large (17-point compact) stencil, 1M grid points, 1000 sweeps.
#include "bench_common.h"
#include "kernels/stencil.h"

int main() {
  using namespace formad;
  bench::FigureSetup setup;
  setup.name = "fig4_fig6_large_stencil";
  setup.title = "Large stencil — paper Fig. 4 (absolute) and Fig. 6 (speedup)";
  setup.spec = kernels::stencilSpec(8);
  const long long n = 1'000'000;
  setup.bind = [n](exec::Inputs& io) {
    kernels::Rng rng(2022);
    kernels::bindStencil(io, 8, n, rng);
  };
  setup.repetitions = 1000;
  setup.paperNotes = {
      {"primal serial", "8.72 s"},
      {"primal parallel (18T)", "0.651 s"},
      {"adjoint serial", "7.16 s"},
      {"adj-atomic best (1T)", "95.8 s"},
      {"adj-reduction best (1T)", "16.5 s"},
      {"adj-FormAD (18T)", "0.578 s"},
      {"primal speedup (18T)", "13.12x"},
      {"adj-FormAD speedup (18T)", "12.4x"},
  };

  auto result = bench::runFigure(setup);
  bench::printFigure(setup, result);
  bench::writeBenchJson(setup, result);
  return 0;
}
