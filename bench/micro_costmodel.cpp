// Wall-clock micro-benchmarks (google-benchmark) that anchor the cost
// model and document the real performance of the library's own machinery
// on this host: interpreter throughput, atomic increments, tape traffic,
// SMT solver checks, and end-to-end analysis/differentiation latency.
#include <benchmark/benchmark.h>

#include <atomic>

#include "ad/tape.h"
#include "driver/driver.h"
#include "exec/interp.h"
#include "kernels/gfmc.h"
#include "kernels/lbm.h"
#include "kernels/stencil.h"
#include "parser/parser.h"
#include "smt/solver.h"

namespace {

using namespace formad;

void BM_ParseStencilKernel(benchmark::State& state) {
  auto spec = kernels::stencilSpec(8);
  for (auto _ : state) {
    auto k = parser::parseKernel(spec.source);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_ParseStencilKernel);

void BM_InterpreterStencilSweep(benchmark::State& state) {
  auto spec = kernels::stencilSpec(1);
  auto kernel = parser::parseKernel(spec.source);
  exec::Executor ex(*kernel);
  exec::Inputs io;
  kernels::Rng rng(1);
  const long long n = state.range(0);
  kernels::bindStencil(io, 1, n, rng);
  for (auto _ : state) {
    (void)ex.run(io);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InterpreterStencilSweep)->Arg(10000)->Arg(100000);

void BM_AtomicRefFetchAdd(benchmark::State& state) {
  std::vector<double> data(1024, 0.0);
  size_t i = 0;
  for (auto _ : state) {
    std::atomic_ref<double>(data[i & 1023]).fetch_add(1.0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicRefFetchAdd);

void BM_PlainIncrement(benchmark::State& state) {
  std::vector<double> data(1024, 0.0);
  size_t i = 0;
  for (auto _ : state) {
    data[i & 1023] += 1.0;
    benchmark::DoNotOptimize(data[i & 1023]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainIncrement);

void BM_TapePushPop(benchmark::State& state) {
  ad::TapeLane lane;
  for (auto _ : state) {
    lane.pushReal(1.0);
    benchmark::DoNotOptimize(lane.popReal());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TapePushPop);

void BM_SolverStencilQuery(benchmark::State& state) {
  using namespace formad::smt;
  AtomTable atoms;
  AtomId i = atoms.internVar("i", 0, false);
  AtomId ip = atoms.internVar("i", 0, true);
  Solver solver(atoms);
  LinExpr I = LinExpr::atom(i), Ip = LinExpr::atom(ip);
  LinExpr one{Rational(1)};
  solver.add(Constraint::ne(Ip, I));
  solver.add(Constraint::ne(Ip, I - one));
  solver.add(Constraint::ne(Ip - one, I));
  solver.add(Constraint::ne(Ip - one, I - one));
  for (auto _ : state) {
    solver.push();
    solver.add(Constraint::eq(Ip - one, I));
    benchmark::DoNotOptimize(solver.check());
    solver.pop();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverStencilQuery);

void BM_AnalyzeKernel(benchmark::State& state) {
  auto spec = state.range(0) == 0 ? kernels::stencilSpec(8)
                                  : kernels::lbmSpec();
  auto kernel = parser::parseKernel(spec.source);
  for (auto _ : state) {
    auto a = driver::analyze(*kernel, spec.independents, spec.dependents);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_AnalyzeKernel)->Arg(0)->Arg(1);

void BM_DifferentiateGfmc(benchmark::State& state) {
  auto spec = kernels::gfmcSplitSpec();
  auto kernel = parser::parseKernel(spec.source);
  for (auto _ : state) {
    auto dr = driver::differentiate(*kernel, spec.independents,
                                    spec.dependents,
                                    driver::AdjointMode::FormAD);
    benchmark::DoNotOptimize(dr);
  }
}
BENCHMARK(BM_DifferentiateGfmc);

}  // namespace

BENCHMARK_MAIN();
