// Reproduces paper Table 1: FormAD analysis statistics per test case —
// analysis time, model size (number of assertions), number of queries
// answered by the proof system, number of unique index expressions, and
// the size of the analyzed parallel region. Also times each analysis at
// 1/2/4/8 worker threads (-analysis-threads; the statistics themselves
// are identical at every width) and writes BENCH_table1_analysis.json
// through the shared writer (bench_common.h), including the per-tier
// query counts of the fast-path deciders and, since schema v3, the same
// tier counts with the abstract interpreter on plus how many tier-2
// (full-solver) checks the injected invariants eliminated.
#include <iostream>

#include "bench_common.h"
#include "driver/driver.h"
#include "driver/report.h"
#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/lbm.h"
#include "kernels/stencil.h"
#include "parser/parser.h"

using namespace formad;

namespace {

struct Row {
  std::string problem;
  kernels::KernelSpec spec;
  // paper reference: time, size, queries, exprs, loc
  const char* paper;
};

}  // namespace

int main() {
  std::vector<Row> rows = {
      {"stencil 1", kernels::stencilSpec(1),
       "paper: 0.677s, size 5, 3 queries, 2 exprs, 3 loc"},
      {"stencil 8", kernels::stencilSpec(8),
       "paper: 1.033s, size 82, 82 queries, 9 exprs, 17 loc"},
      {"GFMC", kernels::gfmcSplitSpec(),
       "paper: 4.145s, size 65, 772 queries, 8 exprs, 54 loc"},
      {"GFMC*", kernels::gfmcFusedSpec(),
       "paper: 3.125s, size 65, 261 queries, 8 exprs, 65 loc"},
      {"LBM", kernels::lbmSpec(),
       "paper: 3.938s, size 362, 364 queries, 19 exprs, 82 loc"},
      {"GreenGauss", kernels::greenGaussSpec(),
       "paper: 0.621s, size 5, 3 queries, 2 exprs, 7 loc"},
  };

  std::cout << "\n### FormAD analysis statistics — paper Table 1\n\n";
  driver::Table table({"problem", "time [s]", "model size", "queries",
                       "queries*", "exprs", "stmts", "tier2 off>on",
                       "verdict"});
  std::vector<std::string> notes;
  bench::Json cases = bench::Json::array();
  for (const auto& row : rows) {
    auto kernel = parser::parseKernel(row.spec.source);
    auto analysis =
        driver::analyze(*kernel, row.spec.independents, row.spec.dependents);
    // queries*: exploitation checks only (no per-assertion consistency
    // safeguard) — the counting that matches the paper's Table 1.
    core::AnalyzeOptions noCC;
    noCC.exploit.checkKnowledgeConsistency = false;
    auto exploitOnly = core::analyzeKernel(*kernel, row.spec.independents,
                                           row.spec.dependents, noCC);
    // Same analysis with the abstract interpreter on: verdicts never
    // weaken (identical on these kernels), tier-2 (full-solver) checks
    // shift into the cheaper tiers.
    core::AnalyzeOptions withAbsint;
    withAbsint.model.absint = true;
    auto absintRun = core::analyzeKernel(*kernel, row.spec.independents,
                                         row.spec.dependents, withAbsint);

    bool allSafe = true;
    for (const auto& r : analysis.regions) allSafe = allSafe && r.allSafe();

    table.addRow({row.problem, driver::fmt(analysis.analysisSeconds(), 4),
                  std::to_string(analysis.modelAssertions()),
                  std::to_string(analysis.queries()),
                  std::to_string(exploitOnly.queries()),
                  std::to_string(analysis.uniqueExprs()),
                  std::to_string(analysis.statementsInRegions()),
                  std::to_string(analysis.tier2Checks()) + ">" +
                      std::to_string(absintRun.tier2Checks()),
                  allSafe ? "safe (no atomics)" : "REJECTED (keep guards)"});
    notes.push_back(row.problem + " — " + row.paper);

    bench::Json c = bench::Json::object();
    c.set("problem", bench::Json::str(row.problem));
    c.set("model_size", bench::Json::integer(analysis.modelAssertions()));
    c.set("queries", bench::Json::integer(analysis.queries()));
    c.set("queries_exploit_only", bench::Json::integer(exploitOnly.queries()));
    c.set("exprs", bench::Json::integer(analysis.uniqueExprs()));
    c.set("stmts", bench::Json::integer(analysis.statementsInRegions()));
    c.set("safe", bench::Json::boolean(allSafe));
    c.set("tiers", bench::tierCountsJson(analysis));
    c.set("tiers_absint", bench::tierCountsJson(absintRun));
    c.set("tier2_killed_by_absint",
          bench::Json::integer(analysis.tier2Checks() -
                               absintRun.tier2Checks()));
    bench::Json byThreads = bench::Json::object();
    for (int threads : {1, 2, 4, 8}) {
      auto timed = driver::analyze(*kernel, row.spec.independents,
                                   row.spec.dependents, threads);
      byThreads.set(std::to_string(threads),
                    bench::Json::num(timed.analysisSeconds()));
    }
    c.set("seconds_by_threads", std::move(byThreads));
    cases.push(std::move(c));
  }
  {
    bench::Json body = bench::Json::object();
    body.set("cases", std::move(cases));
    bench::writeBenchFile("table1_analysis", body);
  }
  std::cout << table.str() << "\n";
  for (const auto& n : notes) std::cout << "  " << n << "\n";
  std::cout <<
      "\nNotes: 'queries' counts every satisfiability check, including the\n"
      "paper's knowledge-consistency safeguard after each assertion;\n"
      "'queries*' counts exploitation checks only, which is how the\n"
      "paper's Table 1 counts (LBM: 364 there, matching ours).\n"
      "The 1+e^2 model-size law\n"
      "holds (5, 82, 362, 5 for stencil1/stencil8/LBM/GreenGauss with\n"
      "e = 2, 9, 19, 2), rejected kernels stop at the first unsafe pair\n"
      "per variable, and proving safety explores the full pair set.\n"
      "Our GFMC kernels are compact re-expressions of the CORAL loops, so\n"
      "their absolute statement/expression counts differ from the paper's\n"
      "Fortran original (see EXPERIMENTS.md).\n\n";

  // Detailed per-region reports.
  for (const auto& row : rows) {
    auto kernel = parser::parseKernel(row.spec.source);
    auto analysis =
        driver::analyze(*kernel, row.spec.independents, row.spec.dependents);
    std::cout << "--- " << row.problem << "\n"
              << core::describe(analysis) << "\n";
  }
  return 0;
}
