// Analysis-cost scaling (paper Sec. 7.5): the model has 1 + e^2 assertions
// for e unique write expressions, and the number of queries grows
// accordingly. Sweeping the compact-stencil radius makes e = radius + 1,
// so this bench traces model size, query counts, and analysis time as the
// region grows — the trend behind the paper's remark that FormAD's
// compile-time cost is amortized over many executions, and that larger
// cases may eventually need a user-configurable prover timeout.
#include <iostream>

#include "driver/driver.h"
#include "driver/report.h"
#include "kernels/stencil.h"
#include "parser/parser.h"

int main() {
  using namespace formad;

  std::cout << "\n### Analysis scaling over stencil radius (e = radius + 1)\n\n";
  driver::Table t({"radius", "exprs e", "model size", "1+e^2", "queries",
                   "time [ms]", "verdict"});
  for (int radius : {1, 2, 4, 8, 12, 16, 24}) {
    auto spec = kernels::stencilSpec(radius);
    auto kernel = parser::parseKernel(spec.source);
    auto a = driver::analyze(*kernel, spec.independents, spec.dependents);
    bool safe = true;
    for (const auto& r : a.regions) safe = safe && r.allSafe();
    int e = a.uniqueExprs();
    t.addRow({std::to_string(radius), std::to_string(e),
              std::to_string(a.modelAssertions()),
              std::to_string(1 + e * e), std::to_string(a.queries()),
              driver::fmt(a.analysisSeconds() * 1e3, 2),
              safe ? "safe" : "rejected"});
  }
  std::cout << t.str()
            << "\nModel size tracks 1+e^2 exactly; queries grow with the\n"
               "pair count; every radius stays provable and far below the\n"
               "paper's <5 s analysis budget.\n\n";
  return 0;
}
