// Analysis-cost scaling (paper Sec. 7.5) in two dimensions.
//
// 1. Model growth: the model has 1 + e^2 assertions for e unique write
//    expressions, and the number of queries grows accordingly. Sweeping
//    the compact-stencil radius makes e = radius + 1, so the first table
//    traces model size, query counts, and analysis time as the region
//    grows — the trend behind the paper's remark that FormAD's
//    compile-time cost is amortized over many executions.
//
// 2. Thread scaling: the exploitation queries are independent and run on
//    a work-stealing pool (-analysis-threads); verdicts are bit-identical
//    at any width, so only wall time changes. For each configuration this
//    bench reports the measured wall time at 1/2/4/8 threads AND the
//    simulated speedup from the per-task wall times (LPT list-scheduling
//    makespan over RegionVerdict::taskSeconds plus the serial
//    plan/replay fraction). The simulation is the repo's usual
//    cost-model convention for hardware-independent numbers: CI
//    containers often pin a single core, where measured wall time cannot
//    scale no matter how the queries are scheduled.
//
// Writes BENCH_analysis_scaling.json.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "driver/driver.h"
#include "driver/report.h"
#include "kernels/greengauss.h"
#include "kernels/stencil.h"
#include "parser/parser.h"

using namespace formad;

namespace {

const int kThreads[] = {1, 2, 4, 8};

/// Longest-processing-time list-scheduling makespan of `tasks` on
/// `workers` identical workers — the standard greedy bound for
/// independent-task scheduling, matching how the pool's dynamic
/// self-scheduling behaves on tasks of uneven cost.
double lptMakespan(std::vector<double> tasks, int workers) {
  std::sort(tasks.begin(), tasks.end(), std::greater<>());
  std::vector<double> load(static_cast<size_t>(workers), 0.0);
  for (double t : tasks)
    *std::min_element(load.begin(), load.end()) += t;
  return *std::max_element(load.begin(), load.end());
}

struct ThreadScaling {
  std::string config;
  double planSeconds = 0.0;
  double taskSecondsTotal = 0.0;
  size_t tasks = 0;
  std::map<int, double> measuredWall;      // threads -> best analysisSeconds
  std::map<int, double> simulatedSpeedup;  // full phase: plan + makespan
  std::map<int, double> querySpeedup;      // query phase only: sum/makespan
};

ThreadScaling scaleConfig(const std::string& name,
                          const kernels::KernelSpec& spec) {
  constexpr int kReps = 5;
  ThreadScaling out;
  out.config = name;
  auto kernel = parser::parseKernel(spec.source);

  // Best-of-kReps wall time per width (the usual benchmarking guard
  // against scheduler noise), and the fastest eager run's per-task
  // profile for the simulation: the 4-thread run evaluates every task,
  // so each entry of taskSeconds carries a wall time.
  std::vector<std::vector<double>> regionTasks;
  double profileCost = 0.0;
  for (int threads : kThreads) {
    for (int rep = 0; rep < kReps; ++rep) {
      auto a = driver::analyze(*kernel, spec.independents, spec.dependents,
                               threads);
      double wall = a.analysisSeconds();
      if (!out.measuredWall.count(threads) ||
          wall < out.measuredWall[threads])
        out.measuredWall[threads] = wall;
      if (threads != 4) continue;
      double plan = 0.0, sum = 0.0;
      for (const auto& r : a.regions) {
        plan += r.planSeconds;
        for (double t : r.taskSeconds) sum += t;
      }
      if (!regionTasks.empty() && plan + sum >= profileCost) continue;
      profileCost = plan + sum;
      regionTasks.clear();
      out.planSeconds = plan;
      out.taskSecondsTotal = sum;
      out.tasks = 0;
      for (const auto& r : a.regions) {
        regionTasks.push_back(r.taskSeconds);
        out.tasks += r.taskSeconds.size();
      }
    }
  }

  const double serial = out.planSeconds + out.taskSecondsTotal;
  for (int threads : kThreads) {
    double makespan = 0.0;
    for (const auto& tasks : regionTasks)
      makespan += lptMakespan(tasks, threads);
    const double parallel = out.planSeconds + makespan;
    out.simulatedSpeedup[threads] = parallel > 0 ? serial / parallel : 1.0;
    out.querySpeedup[threads] =
        makespan > 0 ? out.taskSecondsTotal / makespan : 1.0;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "\n### Analysis scaling over stencil radius (e = radius + 1)\n\n";
  std::ostringstream radiusJson;
  driver::Table t({"radius", "exprs e", "model size", "1+e^2", "queries",
                   "time [ms]", "verdict"});
  bool firstRadius = true;
  for (int radius : {1, 2, 4, 8, 12, 16, 24}) {
    auto spec = kernels::stencilSpec(radius);
    auto kernel = parser::parseKernel(spec.source);
    auto a = driver::analyze(*kernel, spec.independents, spec.dependents);
    bool safe = true;
    for (const auto& r : a.regions) safe = safe && r.allSafe();
    int e = a.uniqueExprs();
    t.addRow({std::to_string(radius), std::to_string(e),
              std::to_string(a.modelAssertions()),
              std::to_string(1 + e * e), std::to_string(a.queries()),
              driver::fmt(a.analysisSeconds() * 1e3, 2),
              safe ? "safe" : "rejected"});
    radiusJson << (firstRadius ? "" : ",") << "\n    {\"radius\": " << radius
               << ", \"exprs\": " << e
               << ", \"model_size\": " << a.modelAssertions()
               << ", \"queries\": " << a.queries()
               << ", \"seconds\": " << a.analysisSeconds()
               << ", \"safe\": " << (safe ? "true" : "false") << "}";
    firstRadius = false;
  }
  std::cout << t.str()
            << "\nModel size tracks 1+e^2 exactly; queries grow with the\n"
               "pair count; every radius stays provable and far below the\n"
               "paper's <5 s analysis budget.\n\n";

  std::cout << "### Analysis-phase thread scaling (-analysis-threads)\n\n";
  std::vector<ThreadScaling> scaling;
  scaling.push_back(
      scaleConfig("large_stencil_r16", kernels::stencilSpec(16)));
  scaling.push_back(scaleConfig("greengauss", kernels::greenGaussSpec()));

  driver::Table st({"config", "tasks", "plan [ms]", "task sum [ms]",
                    "wall@1 [ms]", "wall@4 [ms]", "phase x4", "query x4",
                    "query x8"});
  for (const auto& s : scaling)
    st.addRow({s.config, std::to_string(s.tasks),
               driver::fmt(s.planSeconds * 1e3, 2),
               driver::fmt(s.taskSecondsTotal * 1e3, 2),
               driver::fmt(s.measuredWall.at(1) * 1e3, 2),
               driver::fmt(s.measuredWall.at(4) * 1e3, 2),
               driver::fmt(s.simulatedSpeedup.at(4), 2),
               driver::fmt(s.querySpeedup.at(4), 2),
               driver::fmt(s.querySpeedup.at(8), 2)});
  std::cout
      << st.str()
      << "\nSpeedups are LPT-makespan projections from measured per-task\n"
         "wall times: 'phase' covers plan + queries + replay (Amdahl-capped\n"
         "by the serial plan/replay fraction, which dominates on tiny\n"
         "kernels like Green-Gauss), 'query' covers the parallelized query\n"
         "evaluation itself. Measured wall times reflect whatever cores\n"
         "this machine actually grants the pool.\n\n";

  std::ostringstream js;
  js << "{\n  \"benchmark\": \"analysis_scaling\",\n";
  js << "  \"radius_sweep\": [" << radiusJson.str() << "\n  ],\n";
  js << "  \"thread_scaling\": [\n";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const auto& s = scaling[i];
    js << "    {\"config\": \"" << s.config << "\", \"tasks\": " << s.tasks
       << ", \"plan_seconds\": " << s.planSeconds
       << ", \"task_seconds_total\": " << s.taskSecondsTotal
       << ", \"measured_wall_seconds\": {";
    bool first = true;
    for (int th : kThreads) {
      js << (first ? "" : ", ") << "\"" << th
         << "\": " << s.measuredWall.at(th);
      first = false;
    }
    js << "}, \"simulated_speedup\": {";
    first = true;
    for (int th : kThreads) {
      js << (first ? "" : ", ") << "\"" << th
         << "\": " << s.simulatedSpeedup.at(th);
      first = false;
    }
    js << "}, \"simulated_query_speedup\": {";
    first = true;
    for (int th : kThreads) {
      js << (first ? "" : ", ") << "\"" << th
         << "\": " << s.querySpeedup.at(th);
      first = false;
    }
    js << "}}" << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::ofstream out("BENCH_analysis_scaling.json");
  out << js.str();
  std::cout << "wrote BENCH_analysis_scaling.json\n";

  for (const auto& s : scaling)
    if (s.querySpeedup.at(4) < 2.0)
      std::cout << "NOTE: " << s.config
                << " simulated 4-thread query speedup below 2x ("
                << s.querySpeedup.at(4) << ")\n";
  return 0;
}
