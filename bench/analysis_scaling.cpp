// Analysis-cost scaling (paper Sec. 7.5) in three dimensions.
//
// 1. Model growth: the model has 1 + e^2 assertions for e unique write
//    expressions, and the number of queries grows accordingly. Sweeping
//    the compact-stencil radius makes e = radius + 1, so the first table
//    traces model size, query counts, and analysis time as the region
//    grows — the trend behind the paper's remark that FormAD's
//    compile-time cost is amortized over many executions.
//
// 2. Thread scaling: the exploitation queries are independent and run on
//    a work-stealing pool (-analysis-threads); verdicts are bit-identical
//    at any width, so only wall time changes. For each configuration this
//    bench reports the measured wall time at 1/2/4/8 threads AND the
//    simulated speedup from the per-task wall times (LPT list-scheduling
//    makespan over RegionVerdict::taskSeconds plus the serial
//    plan/replay fraction). The simulation is the repo's usual
//    cost-model convention for hardware-independent numbers: CI
//    containers often pin a single core, where measured wall time cannot
//    scale no matter how the queries are scheduled.
//
// 3. Fast-path tiers: the tiered deciders (smt/fastpath.h) answer most
//    disjointness queries before the full solver. The comparison section
//    runs each configuration with -fastpath off and full and reports the
//    tier-2 (full-solve) check counts and wall times side by side; the
//    verdicts and query totals are identical by construction.
//
// Writes BENCH_analysis_scaling.json through the shared writer
// (bench_common.h). `--smoke` runs a seconds-sized subset (small stencil
// only, fewer repetitions) for the CI quick-bench step.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "driver/driver.h"
#include "driver/report.h"
#include "kernels/greengauss.h"
#include "kernels/stencil.h"
#include "parser/parser.h"

using namespace formad;

namespace {

const int kThreads[] = {1, 2, 4, 8};

/// Longest-processing-time list-scheduling makespan of `tasks` on
/// `workers` identical workers — the standard greedy bound for
/// independent-task scheduling, matching how the pool's dynamic
/// self-scheduling behaves on tasks of uneven cost.
double lptMakespan(std::vector<double> tasks, int workers) {
  std::sort(tasks.begin(), tasks.end(), std::greater<>());
  std::vector<double> load(static_cast<size_t>(workers), 0.0);
  for (double t : tasks)
    *std::min_element(load.begin(), load.end()) += t;
  return *std::max_element(load.begin(), load.end());
}

struct ThreadScaling {
  std::string config;
  double planSeconds = 0.0;
  double taskSecondsTotal = 0.0;
  size_t tasks = 0;
  std::map<int, double> measuredWall;      // threads -> best analysisSeconds
  std::map<int, double> simulatedSpeedup;  // full phase: plan + makespan
  std::map<int, double> querySpeedup;      // query phase only: sum/makespan
};

ThreadScaling scaleConfig(const std::string& name,
                          const kernels::KernelSpec& spec, int reps) {
  ThreadScaling out;
  out.config = name;
  auto kernel = parser::parseKernel(spec.source);

  // Best-of-reps wall time per width (the usual benchmarking guard
  // against scheduler noise), and the fastest eager run's per-task
  // profile for the simulation: the 4-thread run evaluates every task,
  // so each entry of taskSeconds carries a wall time.
  std::vector<std::vector<double>> regionTasks;
  double profileCost = 0.0;
  for (int threads : kThreads) {
    for (int rep = 0; rep < reps; ++rep) {
      auto a = driver::analyze(*kernel, spec.independents, spec.dependents,
                               threads);
      double wall = a.analysisSeconds();
      if (!out.measuredWall.count(threads) ||
          wall < out.measuredWall[threads])
        out.measuredWall[threads] = wall;
      if (threads != 4) continue;
      double plan = 0.0, sum = 0.0;
      for (const auto& r : a.regions) {
        plan += r.planSeconds;
        for (double t : r.taskSeconds) sum += t;
      }
      if (!regionTasks.empty() && plan + sum >= profileCost) continue;
      profileCost = plan + sum;
      regionTasks.clear();
      out.planSeconds = plan;
      out.taskSecondsTotal = sum;
      out.tasks = 0;
      for (const auto& r : a.regions) {
        regionTasks.push_back(r.taskSeconds);
        out.tasks += r.taskSeconds.size();
      }
    }
  }

  const double serial = out.planSeconds + out.taskSecondsTotal;
  for (int threads : kThreads) {
    double makespan = 0.0;
    for (const auto& tasks : regionTasks)
      makespan += lptMakespan(tasks, threads);
    const double parallel = out.planSeconds + makespan;
    out.simulatedSpeedup[threads] = parallel > 0 ? serial / parallel : 1.0;
    out.querySpeedup[threads] =
        makespan > 0 ? out.taskSecondsTotal / makespan : 1.0;
  }
  return out;
}

/// One fast-path ablation point: the same analysis at -fastpath off and
/// full (identical verdicts and query totals; only the tier split and the
/// wall time move).
struct FastPathPoint {
  std::string config;
  core::KernelAnalysis off, full;
  double wallOff = 0.0, wallFull = 0.0;  // best-of-reps, single-threaded
};

FastPathPoint fastpathConfig(const std::string& name,
                             const kernels::KernelSpec& spec, int reps) {
  FastPathPoint p;
  p.config = name;
  auto kernel = parser::parseKernel(spec.source);
  auto best = [&](smt::FastPathMode mode, double& wall) {
    core::KernelAnalysis a;
    wall = -1;
    for (int rep = 0; rep < reps; ++rep) {
      a = driver::analyze(*kernel, spec.independents, spec.dependents,
                          /*analysisThreads=*/1, mode);
      double s = a.analysisSeconds();
      if (wall < 0 || s < wall) wall = s;
    }
    return a;
  };
  p.off = best(smt::FastPathMode::Off, p.wallOff);
  p.full = best(smt::FastPathMode::Full, p.wallFull);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int reps = smoke ? 2 : 5;

  std::cout << "\n### Analysis scaling over stencil radius (e = radius + 1)\n\n";
  bench::Json radiusRows = bench::Json::array();
  driver::Table t({"radius", "exprs e", "model size", "1+e^2", "queries",
                   "tier-2", "time [ms]", "verdict"});
  std::vector<int> radii = smoke ? std::vector<int>{1, 2, 4}
                                 : std::vector<int>{1, 2, 4, 8, 12, 16, 24};
  for (int radius : radii) {
    auto spec = kernels::stencilSpec(radius);
    auto kernel = parser::parseKernel(spec.source);
    auto a = driver::analyze(*kernel, spec.independents, spec.dependents);
    bool safe = true;
    for (const auto& r : a.regions) safe = safe && r.allSafe();
    int e = a.uniqueExprs();
    t.addRow({std::to_string(radius), std::to_string(e),
              std::to_string(a.modelAssertions()),
              std::to_string(1 + e * e), std::to_string(a.queries()),
              std::to_string(a.tier2Checks()),
              driver::fmt(a.analysisSeconds() * 1e3, 2),
              safe ? "safe" : "rejected"});
    bench::Json row = bench::Json::object();
    row.set("radius", bench::Json::integer(radius));
    row.set("exprs", bench::Json::integer(e));
    row.set("model_size", bench::Json::integer(a.modelAssertions()));
    row.set("seconds", bench::Json::num(a.analysisSeconds()));
    row.set("safe", bench::Json::boolean(safe));
    row.set("tiers", bench::tierCountsJson(a));
    radiusRows.push(std::move(row));
  }
  std::cout << t.str()
            << "\nModel size tracks 1+e^2 exactly; queries grow with the\n"
               "pair count; every radius stays provable and far below the\n"
               "paper's <5 s analysis budget.\n\n";

  std::cout << "### Analysis-phase thread scaling (-analysis-threads)\n\n";
  std::vector<std::pair<std::string, kernels::KernelSpec>> configs;
  if (smoke) {
    configs.emplace_back("small_stencil_r4", kernels::stencilSpec(4));
  } else {
    configs.emplace_back("large_stencil_r16", kernels::stencilSpec(16));
    configs.emplace_back("greengauss", kernels::greenGaussSpec());
  }
  std::vector<ThreadScaling> scaling;
  for (const auto& [name, spec] : configs)
    scaling.push_back(scaleConfig(name, spec, reps));

  driver::Table st({"config", "tasks", "plan [ms]", "task sum [ms]",
                    "wall@1 [ms]", "wall@4 [ms]", "phase x4", "query x4",
                    "query x8"});
  for (const auto& s : scaling)
    st.addRow({s.config, std::to_string(s.tasks),
               driver::fmt(s.planSeconds * 1e3, 2),
               driver::fmt(s.taskSecondsTotal * 1e3, 2),
               driver::fmt(s.measuredWall.at(1) * 1e3, 2),
               driver::fmt(s.measuredWall.at(4) * 1e3, 2),
               driver::fmt(s.simulatedSpeedup.at(4), 2),
               driver::fmt(s.querySpeedup.at(4), 2),
               driver::fmt(s.querySpeedup.at(8), 2)});
  std::cout
      << st.str()
      << "\nSpeedups are LPT-makespan projections from measured per-task\n"
         "wall times: 'phase' covers plan + queries + replay (Amdahl-capped\n"
         "by the serial plan/replay fraction, which dominates on tiny\n"
         "kernels like Green-Gauss), 'query' covers the parallelized query\n"
         "evaluation itself. Measured wall times reflect whatever cores\n"
         "this machine actually grants the pool.\n\n";

  std::cout << "### Fast-path tier ablation (-fastpath off vs full)\n\n";
  std::vector<FastPathPoint> fastpath;
  for (const auto& [name, spec] : configs)
    fastpath.push_back(fastpathConfig(name, spec, reps));

  driver::Table ft({"config", "queries", "tier-2 off", "tier-2 full",
                    "tier-2 cut", "wall off [ms]", "wall full [ms]",
                    "wall cut"});
  for (const auto& p : fastpath) {
    const double cut =
        static_cast<double>(p.off.tier2Checks()) /
        static_cast<double>(std::max(1LL, p.full.tier2Checks()));
    ft.addRow({p.config, std::to_string(p.off.queries()),
               std::to_string(p.off.tier2Checks()),
               std::to_string(p.full.tier2Checks()),
               driver::fmt(cut, 1) + "x",
               driver::fmt(p.wallOff * 1e3, 2),
               driver::fmt(p.wallFull * 1e3, 2),
               driver::fmtSpeedup(p.wallFull > 0 ? p.wallOff / p.wallFull
                                                 : 1.0)});
  }
  std::cout << ft.str()
            << "\nBoth columns answer the same queries with identical\n"
               "verdicts; 'tier-2' counts the checks that reached the full\n"
               "solver. The tiered deciders retire the bulk of them\n"
               "syntactically or with GCD/stride/interval arithmetic.\n\n";

  bench::Json scalingRows = bench::Json::array();
  for (const auto& s : scaling) {
    bench::Json row = bench::Json::object();
    row.set("config", bench::Json::str(s.config));
    row.set("tasks", bench::Json::integer(static_cast<long long>(s.tasks)));
    row.set("plan_seconds", bench::Json::num(s.planSeconds));
    row.set("task_seconds_total", bench::Json::num(s.taskSecondsTotal));
    bench::Json wall = bench::Json::object(), sim = bench::Json::object(),
                q = bench::Json::object();
    for (int th : kThreads) {
      wall.set(std::to_string(th), bench::Json::num(s.measuredWall.at(th)));
      sim.set(std::to_string(th), bench::Json::num(s.simulatedSpeedup.at(th)));
      q.set(std::to_string(th), bench::Json::num(s.querySpeedup.at(th)));
    }
    row.set("measured_wall_seconds", std::move(wall));
    row.set("simulated_speedup", std::move(sim));
    row.set("simulated_query_speedup", std::move(q));
    scalingRows.push(std::move(row));
  }

  bench::Json fastpathRows = bench::Json::array();
  for (const auto& p : fastpath) {
    bench::Json row = bench::Json::object();
    row.set("config", bench::Json::str(p.config));
    row.set("off", bench::Json::object()
                       .set("tiers", bench::tierCountsJson(p.off))
                       .set("wall_seconds", bench::Json::num(p.wallOff)));
    row.set("full", bench::Json::object()
                        .set("tiers", bench::tierCountsJson(p.full))
                        .set("wall_seconds", bench::Json::num(p.wallFull)));
    row.set("tier2_reduction",
            bench::Json::num(
                static_cast<double>(p.off.tier2Checks()) /
                static_cast<double>(std::max(1LL, p.full.tier2Checks()))));
    fastpathRows.push(std::move(row));
  }

  bench::Json body = bench::Json::object();
  body.set("smoke", bench::Json::boolean(smoke));
  body.set("radius_sweep", std::move(radiusRows));
  body.set("thread_scaling", std::move(scalingRows));
  body.set("fastpath_comparison", std::move(fastpathRows));
  bench::writeBenchFile("analysis_scaling", body);

  for (const auto& s : scaling)
    if (s.querySpeedup.at(4) < 2.0)
      std::cout << "NOTE: " << s.config
                << " simulated 4-thread query speedup below 2x ("
                << s.querySpeedup.at(4) << ")\n";
  for (const auto& p : fastpath)
    if (p.off.tier2Checks() < 5 * std::max(1LL, p.full.tier2Checks()))
      std::cout << "NOTE: " << p.config << " tier-2 reduction below 5x (off "
                << p.off.tier2Checks() << " vs full " << p.full.tier2Checks()
                << ")\n";
  return 0;
}
