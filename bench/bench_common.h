// Shared driver for the figure benchmarks (paper Figs. 3-10).
//
// For one benchmark kernel this driver
//   1. builds the primal and the four adjoint program versions of Sec. 7
//      (Adjoint Serial / FormAD / Atomic / Reduction);
//   2. profiles one application of each with the interpreter (operation
//      counts per loop iteration);
//   3. simulates wall times on the paper's 18-core socket via the
//      calibrated cost model (see DESIGN.md — this container has one core,
//      so scalability is simulated from measured operation mixes);
//   4. prints the absolute-time table and the speedup table, side by side
//      with the paper's reported reference points.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exec/costmodel.h"
#include "exec/interp.h"
#include "formad/formad.h"
#include "kernels/spec.h"

namespace formad::bench {

/// Minimal insertion-ordered JSON builder for the BENCH_*.json files. All
/// bench binaries emit through it (instead of hand-rolled string pasting)
/// so the files share one schema envelope and one number format.
class Json {
 public:
  [[nodiscard]] static Json num(double v);
  [[nodiscard]] static Json integer(long long v);
  [[nodiscard]] static Json boolean(bool v);
  [[nodiscard]] static Json str(std::string s);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  /// Appends an array element; *this must be array().
  Json& push(Json v);
  /// Sets an object member (insertion order preserved); *this must be
  /// object(). Re-setting a key overwrites in place.
  Json& set(const std::string& key, Json v);
  [[nodiscard]] bool empty() const { return members_.empty() && elems_.empty(); }

  /// Renders with 2-space indentation, members in insertion order.
  [[nodiscard]] std::string dump(int indent = 0) const;

  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return members_;
  }

 private:
  enum class Kind { Null, Num, Int, Bool, Str, Array, Object };
  Kind kind_ = Kind::Null;
  double num_ = 0;
  long long int_ = 0;
  bool bool_ = false;
  std::string str_;
  std::vector<Json> elems_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Writes BENCH_<name>.json in the working directory with the shared
/// envelope: {"benchmark": <name>, "schema_version": 3, ...body members...}.
/// `body` must be object(). Prints the "wrote ..." line the CI artifact
/// step greps for.
void writeBenchFile(const std::string& name, const Json& body);

/// The per-tier query-count object every analysis bench embeds:
/// {"queries", "tier0", "tier1", "tier2", "cached", "absint_facts"} (see
/// core::KernelAnalysis — the four tier components partition queries;
/// absint_facts is 0 unless the analysis ran with model.absint on).
[[nodiscard]] Json tierCountsJson(const core::KernelAnalysis& a);

/// The persistent-cache object of the incremental benches (schema v2):
/// spliced/persisted task counts, fresh solver work, memory/disk IO
/// counters, and the task-level hit rate (0.0 when no store was attached).
[[nodiscard]] Json cacheCountsJson(const core::KernelAnalysis& a);

struct FigureSetup {
  std::string name;            // file-safe id, e.g. "fig3_fig5_small_stencil";
                               // results land in BENCH_<name>.json
  std::string title;           // e.g. "small stencil (Figs. 3 and 5)"
  kernels::KernelSpec spec;
  std::function<void(exec::Inputs&)> bind;
  /// How many times the paper applies the kernel (e.g. 1000 sweeps).
  double repetitions = 1;
  std::vector<int> threads = {1, 2, 4, 8, 18};
  exec::CostParams params;
  /// Repetitions of the real (measured, this container) timing pass; the
  /// best run is reported, so the first-run bytecode compile is excluded.
  int realReps = 3;

  /// Paper reference points, printed next to our numbers:
  /// label -> (description, seconds).
  std::vector<std::pair<std::string, std::string>> paperNotes;
};

/// One measured (not simulated) serial run of a program version on one
/// execution engine, at the figure's full workload.
struct RealTiming {
  std::string version;  // "primal" or "adj-formad"
  std::string engine;   // "bytecode" or "treewalk"
  std::string mode = "serial";
  int threads = 1;
  double seconds = 0;   // best of FigureSetup::realReps runs, one application
  size_t tapePeakBytes = 0;
};

/// Simulated absolute seconds for every program version and thread count.
struct FigureResult {
  // versions in print order: primal, adj-serial, adj-formad, adj-atomic,
  // adj-reduction
  std::vector<std::string> versions;
  std::map<std::string, double> serialSeconds;          // version -> serial
  std::map<std::string, std::map<int, double>> seconds; // version x threads
  std::map<std::string, size_t> tapePeakBytes;
  /// Privatized (reduction-clause) bytes per thread, summed over the
  /// version's parallel loops — the memory-footprint cost the paper notes
  /// for the reduction versions (Sec. 7, remark before 7.1).
  std::map<std::string, double> privatizedBytes;
  /// Wall-clock measurements of primal and FormAD adjoint on both engines.
  std::vector<RealTiming> real;
};

/// Runs the pipeline and returns the simulated series plus the measured
/// engine comparison.
[[nodiscard]] FigureResult runFigure(const FigureSetup& setup);

/// Prints the absolute-time and speedup tables plus paper notes.
void printFigure(const FigureSetup& setup, const FigureResult& result);

/// Writes BENCH_<setup.name>.json (engine, mode, threads, simulated and
/// measured wall times, tape peaks) into the working directory.
void writeBenchJson(const FigureSetup& setup, const FigureResult& result);

}  // namespace formad::bench
