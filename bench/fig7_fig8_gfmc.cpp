// Reproduces paper Figures 7 and 8: absolute run time and parallel speedup
// of the GFMC kernel (split version: dynamic spin-exchange loop + regular
// spin-flip loop), 500 repetitions.
#include "bench_common.h"
#include "kernels/gfmc.h"

int main() {
  using namespace formad;
  bench::FigureSetup setup;
  setup.name = "fig7_fig8_gfmc";
  setup.title = "GFMC — paper Fig. 7 (absolute) and Fig. 8 (speedup)";
  setup.spec = kernels::gfmcSplitSpec();
  kernels::GfmcConfig cfg;
  cfg.ns = 96;
  cfg.nw = 4096;
  cfg.npair = 96;
  cfg.nk = 16;
  setup.bind = [cfg](exec::Inputs& io) {
    kernels::Rng rng(2022);
    kernels::bindGfmc(io, cfg, rng);
  };
  setup.repetitions = 500;
  setup.paperNotes = {
      {"primal serial", "0.655 s"},
      {"adjoint serial", "2.23 s"},
      {"adj-FormAD best (18T)", "0.266 s"},
      {"adj-reduction best (4T)", "1.56 s (5.88x slower than FormAD)"},
      {"adj-atomic", ">= 33.9 s"},
      {"primal speedup (18T)", "7.35x"},
      {"adj-FormAD speedup (18T)", "8.39x"},
      {"adj-reduction peak", "1.43x at 4T"},
  };

  auto result = bench::runFigure(setup);
  bench::printFigure(setup, result);
  bench::writeBenchJson(setup, result);
  return 0;
}
