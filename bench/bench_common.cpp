#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/driver.h"
#include "driver/report.h"
#include "parser/parser.h"
#include "support/diagnostics.h"

namespace formad::bench {

Json Json::num(double v) {
  Json j;
  j.kind_ = Kind::Num;
  j.num_ = v;
  return j;
}

Json Json::integer(long long v) {
  Json j;
  j.kind_ = Kind::Int;
  j.int_ = v;
  return j;
}

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = v;
  return j;
}

Json Json::str(std::string s) {
  Json j;
  j.kind_ = Kind::Str;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json& Json::push(Json v) {
  FORMAD_ASSERT(kind_ == Kind::Array, "Json::push on a non-array");
  elems_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  FORMAD_ASSERT(kind_ == Kind::Object, "Json::set on a non-object");
  for (auto& [k, old] : members_) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

std::string Json::dump(int indent) const {
  auto quoted = [](const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  };
  switch (kind_) {
    case Kind::Null:
      return "null";
    case Kind::Num: {
      std::ostringstream os;
      os << num_;
      return os.str();
    }
    case Kind::Int:
      return std::to_string(int_);
    case Kind::Bool:
      return bool_ ? "true" : "false";
    case Kind::Str:
      return quoted(str_);
    case Kind::Array: {
      if (elems_.empty()) return "[]";
      const std::string pad(static_cast<size_t>(indent), ' ');
      std::string out = "[\n";
      for (size_t i = 0; i < elems_.size(); ++i) {
        out += pad + "  " + elems_[i].dump(indent + 2);
        out += i + 1 < elems_.size() ? ",\n" : "\n";
      }
      return out + pad + "]";
    }
    case Kind::Object: {
      if (members_.empty()) return "{}";
      const std::string pad(static_cast<size_t>(indent), ' ');
      std::string out = "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        out += pad + "  " + quoted(members_[i].first) + ": " +
               members_[i].second.dump(indent + 2);
        out += i + 1 < members_.size() ? ",\n" : "\n";
      }
      return out + pad + "}";
    }
  }
  return "null";
}

void writeBenchFile(const std::string& name, const Json& body) {
  Json root = Json::object();
  root.set("benchmark", Json::str(name));
  // v2: adds the optional persistent-cache members (cacheCountsJson) and
  // the incremental-reanalysis bench file. Existing members are unchanged,
  // so v1 consumers only need to ignore unknown keys.
  // v3: tier-count objects gain absint_facts, and the table1/ablation
  // files gain absint on/off rows plus tier2_killed_by_absint counters.
  // Again purely additive: v2 consumers ignore the new keys.
  root.set("schema_version", Json::integer(3));
  for (const auto& [k, v] : body.members()) root.set(k, v);
  const std::string file = "BENCH_" + name + ".json";
  std::ofstream out(file);
  out << root.dump() << "\n";
  std::cout << "wrote " << file << "\n";
}

Json tierCountsJson(const core::KernelAnalysis& a) {
  Json t = Json::object();
  t.set("queries", Json::integer(a.queries()));
  t.set("tier0", Json::integer(a.tier0Hits()));
  t.set("tier1", Json::integer(a.tier1Hits()));
  t.set("tier2", Json::integer(a.tier2Checks()));
  t.set("cached", Json::integer(a.cacheHits()));
  t.set("absint_facts", Json::integer(a.absintFacts()));
  return t;
}

Json cacheCountsJson(const core::KernelAnalysis& a) {
  Json c = Json::object();
  c.set("tasks_spliced", Json::integer(a.tasksSpliced()));
  c.set("tasks_persisted", Json::integer(a.tasksPersisted()));
  c.set("fresh_solver_checks", Json::integer(a.freshSolverChecks()));
  c.set("fresh_tier2_solves", Json::integer(a.freshTier2Solves()));
  c.set("memory_hits", Json::integer(a.cacheMemoryHits()));
  c.set("disk_hits", Json::integer(a.cacheDiskHits()));
  c.set("disk_stores", Json::integer(a.cacheDiskStores()));
  const long long tasks = a.tasksSpliced() + a.tasksPersisted();
  c.set("task_hit_rate", Json::num(tasks > 0 ? static_cast<double>(
                                                   a.tasksSpliced()) /
                                                   static_cast<double>(tasks)
                                             : 0.0));
  return c;
}

using driver::AdjointMode;
using exec::ArrayValue;
using exec::ExecMode;
using exec::ExecOptions;
using exec::Executor;
using exec::Inputs;
using exec::RunProfile;

namespace {

/// Binds zero-filled adjoint arrays for every adjoint parameter (their
/// contents do not affect operation counts).
void bindAdjoints(Inputs& io,
                  const std::map<std::string, std::string>& adjointParams) {
  for (const auto& [p, pb] : adjointParams) {
    const ArrayValue& a = io.array(p);
    std::vector<long long> dims;
    for (int k = 0; k < a.rank(); ++k) dims.push_back(a.dim(k));
    ArrayValue& b = io.bindArray(pb, ArrayValue::reals(dims));
    b.fill(1e-3);
  }
}

struct Profiled {
  RunProfile profile;
  size_t tapePeak = 0;
};

Profiled profileKernel(const ir::Kernel& kernel, const FigureSetup& setup,
                       const std::map<std::string, std::string>* adjParams) {
  Executor ex(kernel);
  Inputs io;
  setup.bind(io);
  if (adjParams != nullptr) bindAdjoints(io, *adjParams);
  exec::ExecStats st = ex.run(io, ExecOptions{ExecMode::Profile, 1});
  return Profiled{std::move(st.profile), st.tapePeakBytes};
}

/// Measures one serial kernel application on `engine` (best of
/// setup.realReps; inputs are rebound outside the timed section, so the
/// first run's bytecode compilation is the only one-off cost and best-of
/// excludes it).
RealTiming timeReal(const ir::Kernel& kernel, const FigureSetup& setup,
                    const std::map<std::string, std::string>* adjParams,
                    const std::string& version, exec::ExecEngine engine) {
  RealTiming rt;
  rt.version = version;
  rt.engine = engine == exec::ExecEngine::Bytecode ? "bytecode" : "treewalk";
  Executor ex(kernel);
  ExecOptions opts;
  opts.mode = ExecMode::Serial;
  opts.engine = engine;
  rt.seconds = -1;
  for (int rep = 0; rep < std::max(1, setup.realReps); ++rep) {
    Inputs io;
    setup.bind(io);
    if (adjParams != nullptr) bindAdjoints(io, *adjParams);
    auto t0 = std::chrono::steady_clock::now();
    exec::ExecStats st = ex.run(io, opts);
    double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    if (rt.seconds < 0 || s < rt.seconds) rt.seconds = s;
    rt.tapePeakBytes = st.tapePeakBytes;
  }
  return rt;
}

}  // namespace

FigureResult runFigure(const FigureSetup& setup) {
  auto primal = parser::parseKernel(setup.spec.source);

  FigureResult result;
  result.versions = {"primal", "adj-serial", "adj-formad", "adj-atomic",
                     "adj-reduction"};

  // Primal.
  result.real.push_back(
      timeReal(*primal, setup, nullptr, "primal", exec::ExecEngine::TreeWalk));
  result.real.push_back(
      timeReal(*primal, setup, nullptr, "primal", exec::ExecEngine::Bytecode));
  Profiled primalProf = profileKernel(*primal, setup, nullptr);
  result.serialSeconds["primal"] =
      exec::serialTime(primalProf.profile, setup.params) * setup.repetitions;
  for (int t : setup.threads)
    result.seconds["primal"][t] =
        exec::runTime(primalProf.profile, setup.params, t) * setup.repetitions;

  // Adjoint versions.
  const std::pair<std::string, AdjointMode> adjoints[] = {
      {"adj-serial", AdjointMode::Serial},
      {"adj-formad", AdjointMode::FormAD},
      {"adj-atomic", AdjointMode::Atomic},
      {"adj-reduction", AdjointMode::Reduction},
  };
  for (const auto& [label, mode] : adjoints) {
    // The paper's adjoint timings reflect the adjoint computation itself;
    // when nothing needs taping, the primal forward sweep is dropped.
    auto dr = driver::differentiate(*primal, setup.spec.independents,
                                    setup.spec.dependents, mode,
                                    /*omitTapeFreePrimalSweep=*/true);
    if (mode == AdjointMode::FormAD) {
      result.real.push_back(timeReal(*dr.adjoint, setup, &dr.adjointParams,
                                     label, exec::ExecEngine::TreeWalk));
      result.real.push_back(timeReal(*dr.adjoint, setup, &dr.adjointParams,
                                     label, exec::ExecEngine::Bytecode));
    }
    Profiled prof = profileKernel(*dr.adjoint, setup, &dr.adjointParams);
    result.tapePeakBytes[label] = prof.tapePeak;
    double priv = 0;
    for (const auto& lp : prof.profile.loops) priv += lp.reductionBytes;
    result.privatizedBytes[label] = priv;
    result.serialSeconds[label] =
        exec::serialTime(prof.profile, setup.params) * setup.repetitions;
    for (int t : setup.threads)
      result.seconds[label][t] =
          exec::runTime(prof.profile, setup.params, t) * setup.repetitions;
  }
  return result;
}

void printFigure(const FigureSetup& setup, const FigureResult& result) {
  std::cout << "\n### " << setup.title << "\n\n";

  {
    std::vector<std::string> header = {"version", "serial"};
    for (int t : setup.threads) header.push_back(std::to_string(t) + "T");
    driver::Table abs(header);
    for (const auto& v : result.versions) {
      std::vector<std::string> row = {v,
                                      driver::fmt(result.serialSeconds.at(v))};
      for (int t : setup.threads)
        row.push_back(driver::fmt(result.seconds.at(v).at(t)));
      abs.addRow(std::move(row));
    }
    std::cout << "Absolute time (simulated seconds):\n" << abs.str();
  }

  {
    std::vector<std::string> header = {"version"};
    for (int t : setup.threads) header.push_back(std::to_string(t) + "T");
    driver::Table sp(header);
    for (const auto& v : result.versions) {
      // Paper convention: speedups are relative to the *serial* program of
      // the same kind (primal vs primal-serial, adjoints vs adj-serial).
      double base = v == "primal" ? result.serialSeconds.at("primal")
                                  : result.serialSeconds.at("adj-serial");
      std::vector<std::string> row = {v};
      for (int t : setup.threads)
        row.push_back(driver::fmtSpeedup(base / result.seconds.at(v).at(t)));
      sp.addRow(std::move(row));
    }
    std::cout << "\nParallel speedup vs. serial baseline:\n" << sp.str();
  }

  {
    // Paper (Sec. 7): "the program versions with reduction pragmas have a
    // significantly larger memory footprint ... whether or not atomics are
    // used does not significantly affect the memory footprint."
    const int maxT = setup.params.maxCores;
    driver::Table mem({"version", "tape peak",
                       "privatized copies @" + std::to_string(maxT) + "T"});
    for (const auto& v : result.versions) {
      if (v == "primal") continue;
      auto tp = result.tapePeakBytes.find(v);
      auto pv = result.privatizedBytes.find(v);
      auto mb = [](double b) { return driver::fmt(b / 1048576.0, 2) + " MiB"; };
      mem.addRow({v,
                  tp == result.tapePeakBytes.end()
                      ? "-" : mb(static_cast<double>(tp->second)),
                  pv == result.privatizedBytes.end() || pv->second == 0
                      ? "0" : mb(maxT * pv->second)});
    }
    std::cout << "\nMemory overhead per kernel application:\n" << mem.str();
  }

  if (!result.real.empty()) {
    // Measured on this container (single application, serial, both
    // engines) — the one table here that is real wall time, not the cost
    // model.
    driver::Table rt({"version", "engine", "seconds", "vs treewalk"});
    for (const auto& r : result.real) {
      double base = 0;
      for (const auto& o : result.real)
        if (o.version == r.version && o.engine == "treewalk") base = o.seconds;
      rt.addRow({r.version, r.engine, driver::fmt(r.seconds),
                 r.engine == "treewalk" || r.seconds <= 0
                     ? "1.0x"
                     : driver::fmtSpeedup(base / r.seconds)});
    }
    std::cout << "\nMeasured engine comparison (1 application, serial, this "
                 "machine):\n"
              << rt.str();
  }

  if (!setup.paperNotes.empty()) {
    std::cout << "\nPaper reference points:\n";
    for (const auto& [what, value] : setup.paperNotes)
      std::cout << "  " << what << ": " << value << "\n";
  }
  std::cout << std::endl;
}

void writeBenchJson(const FigureSetup& setup, const FigureResult& result) {
  if (setup.name.empty()) return;
  Json body = Json::object();
  body.set("repetitions", Json::num(setup.repetitions));
  Json threads = Json::array();
  for (int t : setup.threads) threads.push(Json::integer(t));
  body.set("threads", std::move(threads));

  Json simulated = Json::array();
  for (const std::string& v : result.versions) {
    Json e = Json::object();
    e.set("version", Json::str(v));
    e.set("mode", Json::str("simulated"));
    e.set("serial_seconds", Json::num(result.serialSeconds.at(v)));
    Json ps = Json::object();
    for (int t : setup.threads)
      ps.set(std::to_string(t), Json::num(result.seconds.at(v).at(t)));
    e.set("parallel_seconds", std::move(ps));
    auto tp = result.tapePeakBytes.find(v);
    if (tp != result.tapePeakBytes.end())
      e.set("tape_peak_bytes",
            Json::integer(static_cast<long long>(tp->second)));
    simulated.push(std::move(e));
  }
  body.set("simulated", std::move(simulated));

  Json real = Json::array();
  for (const RealTiming& r : result.real) {
    Json e = Json::object();
    e.set("version", Json::str(r.version));
    e.set("engine", Json::str(r.engine));
    e.set("mode", Json::str(r.mode));
    e.set("threads", Json::integer(r.threads));
    e.set("seconds", Json::num(r.seconds));
    e.set("tape_peak_bytes",
          Json::integer(static_cast<long long>(r.tapePeakBytes)));
    real.push(std::move(e));
  }
  body.set("real", std::move(real));

  writeBenchFile(setup.name, body);
}

}  // namespace formad::bench
