#include "bench_common.h"

#include <iostream>

#include "driver/driver.h"
#include "driver/report.h"
#include "parser/parser.h"

namespace formad::bench {

using driver::AdjointMode;
using exec::ArrayValue;
using exec::ExecMode;
using exec::ExecOptions;
using exec::Executor;
using exec::Inputs;
using exec::RunProfile;

namespace {

/// Binds zero-filled adjoint arrays for every adjoint parameter (their
/// contents do not affect operation counts).
void bindAdjoints(Inputs& io,
                  const std::map<std::string, std::string>& adjointParams) {
  for (const auto& [p, pb] : adjointParams) {
    const ArrayValue& a = io.array(p);
    std::vector<long long> dims;
    for (int k = 0; k < a.rank(); ++k) dims.push_back(a.dim(k));
    ArrayValue& b = io.bindArray(pb, ArrayValue::reals(dims));
    b.fill(1e-3);
  }
}

struct Profiled {
  RunProfile profile;
  size_t tapePeak = 0;
};

Profiled profileKernel(const ir::Kernel& kernel, const FigureSetup& setup,
                       const std::map<std::string, std::string>* adjParams) {
  Executor ex(kernel);
  Inputs io;
  setup.bind(io);
  if (adjParams != nullptr) bindAdjoints(io, *adjParams);
  exec::ExecStats st = ex.run(io, ExecOptions{ExecMode::Profile, 1});
  return Profiled{std::move(st.profile), st.tapePeakBytes};
}

}  // namespace

FigureResult runFigure(const FigureSetup& setup) {
  auto primal = parser::parseKernel(setup.spec.source);

  FigureResult result;
  result.versions = {"primal", "adj-serial", "adj-formad", "adj-atomic",
                     "adj-reduction"};

  // Primal.
  Profiled primalProf = profileKernel(*primal, setup, nullptr);
  result.serialSeconds["primal"] =
      exec::serialTime(primalProf.profile, setup.params) * setup.repetitions;
  for (int t : setup.threads)
    result.seconds["primal"][t] =
        exec::runTime(primalProf.profile, setup.params, t) * setup.repetitions;

  // Adjoint versions.
  const std::pair<std::string, AdjointMode> adjoints[] = {
      {"adj-serial", AdjointMode::Serial},
      {"adj-formad", AdjointMode::FormAD},
      {"adj-atomic", AdjointMode::Atomic},
      {"adj-reduction", AdjointMode::Reduction},
  };
  for (const auto& [label, mode] : adjoints) {
    // The paper's adjoint timings reflect the adjoint computation itself;
    // when nothing needs taping, the primal forward sweep is dropped.
    auto dr = driver::differentiate(*primal, setup.spec.independents,
                                    setup.spec.dependents, mode,
                                    /*omitTapeFreePrimalSweep=*/true);
    Profiled prof = profileKernel(*dr.adjoint, setup, &dr.adjointParams);
    result.tapePeakBytes[label] = prof.tapePeak;
    double priv = 0;
    for (const auto& lp : prof.profile.loops) priv += lp.reductionBytes;
    result.privatizedBytes[label] = priv;
    result.serialSeconds[label] =
        exec::serialTime(prof.profile, setup.params) * setup.repetitions;
    for (int t : setup.threads)
      result.seconds[label][t] =
          exec::runTime(prof.profile, setup.params, t) * setup.repetitions;
  }
  return result;
}

void printFigure(const FigureSetup& setup, const FigureResult& result) {
  std::cout << "\n### " << setup.title << "\n\n";

  {
    std::vector<std::string> header = {"version", "serial"};
    for (int t : setup.threads) header.push_back(std::to_string(t) + "T");
    driver::Table abs(header);
    for (const auto& v : result.versions) {
      std::vector<std::string> row = {v,
                                      driver::fmt(result.serialSeconds.at(v))};
      for (int t : setup.threads)
        row.push_back(driver::fmt(result.seconds.at(v).at(t)));
      abs.addRow(std::move(row));
    }
    std::cout << "Absolute time (simulated seconds):\n" << abs.str();
  }

  {
    std::vector<std::string> header = {"version"};
    for (int t : setup.threads) header.push_back(std::to_string(t) + "T");
    driver::Table sp(header);
    for (const auto& v : result.versions) {
      // Paper convention: speedups are relative to the *serial* program of
      // the same kind (primal vs primal-serial, adjoints vs adj-serial).
      double base = v == "primal" ? result.serialSeconds.at("primal")
                                  : result.serialSeconds.at("adj-serial");
      std::vector<std::string> row = {v};
      for (int t : setup.threads)
        row.push_back(driver::fmtSpeedup(base / result.seconds.at(v).at(t)));
      sp.addRow(std::move(row));
    }
    std::cout << "\nParallel speedup vs. serial baseline:\n" << sp.str();
  }

  {
    // Paper (Sec. 7): "the program versions with reduction pragmas have a
    // significantly larger memory footprint ... whether or not atomics are
    // used does not significantly affect the memory footprint."
    const int maxT = setup.params.maxCores;
    driver::Table mem({"version", "tape peak",
                       "privatized copies @" + std::to_string(maxT) + "T"});
    for (const auto& v : result.versions) {
      if (v == "primal") continue;
      auto tp = result.tapePeakBytes.find(v);
      auto pv = result.privatizedBytes.find(v);
      auto mb = [](double b) { return driver::fmt(b / 1048576.0, 2) + " MiB"; };
      mem.addRow({v,
                  tp == result.tapePeakBytes.end()
                      ? "-" : mb(static_cast<double>(tp->second)),
                  pv == result.privatizedBytes.end() || pv->second == 0
                      ? "0" : mb(maxT * pv->second)});
    }
    std::cout << "\nMemory overhead per kernel application:\n" << mem.str();
  }

  if (!setup.paperNotes.empty()) {
    std::cout << "\nPaper reference points:\n";
    for (const auto& [what, value] : setup.paperNotes)
      std::cout << "  " << what << ": " << value << "\n";
  }
  std::cout << std::endl;
}

}  // namespace formad::bench
