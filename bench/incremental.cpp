// Incremental re-analysis with the persistent verdict cache (-cache-dir).
//
// Three phases over the paper's large compact stencil (radius 16, the
// 33-point kernel of Sec. 7.1; --smoke shrinks it to radius 4 for CI):
//
//   cold   analyze with an empty cache directory: every exploitation task
//          is proven from scratch and persisted;
//   warm   analyze the unchanged kernel against the populated directory:
//          every task splices from disk — zero fresh solver checks, zero
//          tier-2 solves — and only plan + IO + replay remain on the
//          clock;
//   edited re-analyze after a localized source edit (one read offset in
//          one statement): only the question pairs whose content
//          fingerprints moved are re-proven, the rest still splice.
//
// All three phases run with -fastpath off so the cold baseline is real
// solver work (the tiered deciders would otherwise hide it), and every
// phase's verdict report is compared byte-for-byte against a store-free
// run at 1/2/4/8 analysis threads — the cache must be IO-observable only.
//
// Writes BENCH_incremental.json (schema v2: cache hit-rate objects per
// phase, wall times, warm-over-cold speedup) through the shared writer.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "driver/driver.h"
#include "driver/report.h"
#include "kernels/stencil.h"
#include "parser/parser.h"
#include "smt/diskcache.h"

using namespace formad;

namespace {

const int kThreads[] = {1, 2, 4, 8};

struct PhaseResult {
  std::string phase;
  double wallSeconds = 0.0;  // best of reps
  core::KernelAnalysis analysis;
  bool reportsIdentical = true;  // vs store-free run at 1/2/4/8 threads
};

core::KernelAnalysis analyzeWith(const ir::Kernel& kernel,
                                 const kernels::KernelSpec& spec,
                                 smt::PersistentVerdictStore* store,
                                 int threads) {
  driver::DriverOptions opts;
  opts.analysisThreads = threads;
  opts.fastpath = smt::FastPathMode::Off;
  opts.verdictStore = store;
  return driver::analyze(kernel, spec.independents, spec.dependents, opts);
}

/// Checks the cache is verdict-neutral: the timing-free report of a cached
/// analysis must equal the store-free report at every pool width.
bool identicalAcrossWidths(const ir::Kernel& kernel,
                           const kernels::KernelSpec& spec,
                           smt::PersistentVerdictStore* store,
                           const std::string& phase) {
  const std::string reference = core::describe(
      analyzeWith(kernel, spec, nullptr, 1), /*includeTiming=*/false);
  bool ok = true;
  for (int threads : kThreads) {
    const std::string got = core::describe(
        analyzeWith(kernel, spec, store, threads), /*includeTiming=*/false);
    if (got != reference) {
      ok = false;
      std::cout << "MISMATCH: " << phase << " report at " << threads
                << " thread(s) differs from the store-free baseline\n";
    }
  }
  return ok;
}

PhaseResult runPhase(const std::string& phase, const ir::Kernel& kernel,
                     const kernels::KernelSpec& spec,
                     const std::filesystem::path& dir, int reps,
                     bool freshDirPerRep) {
  PhaseResult out;
  out.phase = phase;
  out.wallSeconds = -1;
  for (int rep = 0; rep < reps; ++rep) {
    if (freshDirPerRep) {
      // A cold measurement must start from an empty store every time —
      // the first rep would otherwise warm the later ones.
      std::filesystem::remove_all(dir);
    }
    smt::PersistentVerdictStore store(dir.string());
    auto a = analyzeWith(kernel, spec, &store, /*threads=*/1);
    const double wall = a.analysisSeconds();
    if (out.wallSeconds < 0 || wall < out.wallSeconds) {
      out.wallSeconds = wall;
      out.analysis = std::move(a);
    }
  }
  smt::PersistentVerdictStore store(dir.string());
  out.reportsIdentical = identicalAcrossWidths(kernel, spec, &store, phase);
  return out;
}

bench::Json phaseJson(const PhaseResult& p) {
  bench::Json row = bench::Json::object();
  row.set("phase", bench::Json::str(p.phase));
  row.set("wall_seconds", bench::Json::num(p.wallSeconds));
  row.set("tiers", bench::tierCountsJson(p.analysis));
  row.set("cache", bench::cacheCountsJson(p.analysis));
  row.set("reports_identical", bench::Json::boolean(p.reportsIdentical));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int radius = smoke ? 4 : 16;
  const int reps = smoke ? 2 : 3;

  const kernels::KernelSpec spec = kernels::stencilSpec(radius);
  auto kernel = parser::parseKernel(spec.source);

  // The localized edit: one read offset of one statement. Every question
  // pair that does not mention the edited reference keeps its content
  // fingerprint and still splices from the cold run's store.
  kernels::KernelSpec edited = spec;
  const std::string from = "uold[i - 1]";
  const std::string to = "uold[i - " + std::to_string(radius + 1) + "]";
  const size_t at = edited.source.find(from);
  if (at == std::string::npos) {
    std::cerr << "edit site not found in stencil source\n";
    return 1;
  }
  edited.source.replace(at, from.size(), to);
  auto editedKernel = parser::parseKernel(edited.source);

  const std::filesystem::path dir = "incremental_cache";
  std::filesystem::remove_all(dir);

  std::cout << "\n### Incremental re-analysis, stencil r" << radius
            << " (-fastpath off, persistent cache)\n\n";

  PhaseResult cold =
      runPhase("cold", *kernel, spec, dir, reps, /*freshDirPerRep=*/true);
  PhaseResult warm =
      runPhase("warm", *kernel, spec, dir, reps, /*freshDirPerRep=*/false);
  PhaseResult editedPhase = runPhase("edited", *editedKernel, edited, dir,
                                     /*reps=*/1, /*freshDirPerRep=*/false);

  const double speedup =
      warm.wallSeconds > 0 ? cold.wallSeconds / warm.wallSeconds : 0.0;

  driver::Table t({"phase", "wall [ms]", "tasks spliced", "tasks persisted",
                   "fresh checks", "fresh tier-2", "reports"});
  for (const PhaseResult* p : {&cold, &warm, &editedPhase})
    t.addRow({p->phase, driver::fmt(p->wallSeconds * 1e3, 3),
              std::to_string(p->analysis.tasksSpliced()),
              std::to_string(p->analysis.tasksPersisted()),
              std::to_string(p->analysis.freshSolverChecks()),
              std::to_string(p->analysis.freshTier2Solves()),
              p->reportsIdentical ? "identical" : "MISMATCH"});
  std::cout << t.str() << "\nwarm-over-cold speedup: "
            << driver::fmt(speedup, 1)
            << "x (warm runs answer every task from the store; the edited "
               "run\nre-proves only the pairs whose content fingerprints "
               "moved)\n\n";

  bench::Json phases = bench::Json::array();
  phases.push(phaseJson(cold));
  phases.push(phaseJson(warm));
  phases.push(phaseJson(editedPhase));

  bench::Json body = bench::Json::object();
  body.set("smoke", bench::Json::boolean(smoke));
  body.set("radius", bench::Json::integer(radius));
  body.set("phases", std::move(phases));
  body.set("warm_speedup", bench::Json::num(speedup));
  bench::writeBenchFile("incremental", body);

  std::filesystem::remove_all(dir);

  // The contract the CI smoke job (and the paper's steady-state claim)
  // rests on: a warm run does no solver work at all.
  bool ok = cold.reportsIdentical && warm.reportsIdentical &&
            editedPhase.reportsIdentical;
  if (warm.analysis.freshSolverChecks() != 0 ||
      warm.analysis.freshTier2Solves() != 0) {
    std::cout << "FAIL: warm run performed fresh solver work\n";
    ok = false;
  }
  if (warm.analysis.tasksSpliced() == 0 ||
      warm.analysis.tasksPersisted() != 0) {
    std::cout << "FAIL: warm run did not splice every task from the store\n";
    ok = false;
  }
  if (editedPhase.analysis.tasksSpliced() == 0) {
    std::cout << "FAIL: edited run spliced nothing — fingerprints unstable\n";
    ok = false;
  }
  if (!smoke && speedup < 10.0)
    std::cout << "NOTE: warm speedup below 10x (" << driver::fmt(speedup, 1)
              << "x)\n";
  return ok ? 0 : 1;
}
