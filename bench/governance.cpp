// Resource governance: verdict quality vs. solver step budget.
//
// FormAD's step budget (-solver-budget) caps every solver check at a
// deterministic number of internal steps; checks that run out degrade the
// affected variable to an atomic adjoint instead of hanging or aborting.
// This bench sweeps the budget from starvation to unlimited on the repo's
// benchmark kernels and reports, per point,
//   - how many variables stay provably safe (shared adjoint access),
//   - how many pairs degraded (kept atomic purely by governance),
//   - how many checks hit the budget, and the analysis wall time,
// making the quality/effort trade-off a table instead of folklore. It also
// re-runs one starved configuration at 1 and 4 analysis threads and checks
// that every verdict-affecting counter matches exactly — the determinism
// contract budgets are designed around (steps are counted, never timed).
//
// Writes BENCH_governance.json through the shared writer (bench_common.h).
// `--smoke` runs a seconds-sized subset for the CI quick-bench step.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "driver/driver.h"
#include "driver/report.h"
#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/lbm.h"
#include "kernels/stencil.h"
#include "parser/parser.h"

using namespace formad;

namespace {

struct SweepPoint {
  long long budget = 0;  // 0 = unlimited
  long long safeVars = 0, unsafeVars = 0;
  long long degradedPairs = 0, exhaustedChecks = 0;
  double seconds = 0.0;
};

long long safeCount(const core::KernelAnalysis& a) {
  long long n = 0;
  for (const auto& r : a.regions)
    for (const auto& v : r.vars) n += v.safe ? 1 : 0;
  return n;
}

long long varCount(const core::KernelAnalysis& a) {
  long long n = 0;
  for (const auto& r : a.regions) n += static_cast<long long>(r.vars.size());
  return n;
}

SweepPoint runPoint(const ir::Kernel& kernel, const kernels::KernelSpec& spec,
                    long long budget, int threads = 1) {
  driver::DriverOptions opts;
  opts.analysisThreads = threads;
  // The tiered fast paths (smt/fastpath.h) answer most benchmark queries
  // without a single counted solver step, which would make every budget
  // point identical. Sweeping with the fast path off measures what the
  // budget actually governs: the full decision procedures.
  opts.fastpath = smt::FastPathMode::Off;
  opts.solverStepBudget = budget;
  auto a = driver::analyze(kernel, spec.independents, spec.dependents, opts);
  SweepPoint p;
  p.budget = budget;
  p.safeVars = safeCount(a);
  p.unsafeVars = varCount(a) - p.safeVars;
  p.degradedPairs = a.degradedPairs();
  p.exhaustedChecks = a.budgetExhaustedChecks();
  p.seconds = a.analysisSeconds();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  std::vector<std::pair<std::string, kernels::KernelSpec>> configs;
  configs.emplace_back("small_stencil_r2", kernels::stencilSpec(2));
  if (!smoke) {
    configs.emplace_back("large_stencil_r8", kernels::stencilSpec(8));
    configs.emplace_back("lbm", kernels::lbmSpec());
    configs.emplace_back("gfmc_split", kernels::gfmcSplitSpec());
  }
  configs.emplace_back("greengauss", kernels::greenGaussSpec());

  // 0 terminates each sweep = unlimited (the reference verdict).
  std::vector<long long> budgets =
      smoke ? std::vector<long long>{1, 16, 256, 0}
            : std::vector<long long>{1, 4, 16, 64, 256, 1024, 4096, 0};

  bench::Json sweepRows = bench::Json::array();
  bool monotone = true;
  for (const auto& [name, spec] : configs) {
    auto kernel = parser::parseKernel(spec.source);
    std::cout << "\n### " << name << ": verdict quality vs. step budget\n\n";
    driver::Table t({"budget", "safe vars", "atomic vars", "degraded pairs",
                     "exhausted checks", "time [ms]"});
    long long prevSafe = -1;
    bool prevUnlimited = false;
    for (long long budget : budgets) {
      SweepPoint p = runPoint(*kernel, spec, budget);
      t.addRow({budget == 0 ? "unlimited" : std::to_string(budget),
                std::to_string(p.safeVars), std::to_string(p.unsafeVars),
                std::to_string(p.degradedPairs),
                std::to_string(p.exhaustedChecks),
                driver::fmt(p.seconds * 1e3, 2)});
      // Bigger budgets can only recover verdicts, never lose them.
      if (prevSafe >= 0 && !prevUnlimited && p.safeVars < prevSafe)
        monotone = false;
      prevSafe = p.safeVars;
      prevUnlimited = budget == 0;
      bench::Json row = bench::Json::object();
      row.set("config", bench::Json::str(name));
      row.set("budget", bench::Json::integer(p.budget));
      row.set("unlimited", bench::Json::boolean(p.budget == 0));
      row.set("safe_vars", bench::Json::integer(p.safeVars));
      row.set("atomic_vars", bench::Json::integer(p.unsafeVars));
      row.set("degraded_pairs", bench::Json::integer(p.degradedPairs));
      row.set("exhausted_checks", bench::Json::integer(p.exhaustedChecks));
      row.set("seconds", bench::Json::num(p.seconds));
      sweepRows.push(std::move(row));
    }
    std::cout << t.str();
  }
  std::cout << "\nEvery budget point is a sound analysis: degraded pairs\n"
               "fall back to atomic adjoints, so the generated code is\n"
               "correct at any budget — only its scalability recovers as\n"
               "the budget grows toward the unlimited reference verdict.\n";

  // Determinism spot check: a starved run must produce identical
  // verdict-affecting counters at any thread count (steps, not seconds).
  std::cout << "\n### Budgeted-verdict determinism across thread counts\n\n";
  bench::Json determinism = bench::Json::array();
  bool deterministic = true;
  {
    const auto& [name, spec] = configs.front();
    auto kernel = parser::parseKernel(spec.source);
    const long long starved = 16;
    SweepPoint t1 = runPoint(*kernel, spec, starved, /*threads=*/1);
    SweepPoint t4 = runPoint(*kernel, spec, starved, /*threads=*/4);
    deterministic = t1.safeVars == t4.safeVars &&
                    t1.degradedPairs == t4.degradedPairs &&
                    t1.exhaustedChecks == t4.exhaustedChecks;
    std::cout << name << " @ budget " << starved << ": threads 1 vs 4 -> "
              << (deterministic ? "identical counters\n"
                                : "MISMATCH (determinism bug)\n");
    for (const SweepPoint* p : {&t1, &t4}) {
      bench::Json row = bench::Json::object();
      row.set("config", bench::Json::str(name));
      row.set("budget", bench::Json::integer(starved));
      row.set("threads", bench::Json::integer(p == &t1 ? 1 : 4));
      row.set("safe_vars", bench::Json::integer(p->safeVars));
      row.set("degraded_pairs", bench::Json::integer(p->degradedPairs));
      row.set("exhausted_checks", bench::Json::integer(p->exhaustedChecks));
      determinism.push(std::move(row));
    }
  }

  bench::Json body = bench::Json::object();
  body.set("smoke", bench::Json::boolean(smoke));
  body.set("budget_sweep", std::move(sweepRows));
  body.set("safe_vars_monotone_in_budget", bench::Json::boolean(monotone));
  body.set("budgeted_verdicts_thread_deterministic",
           bench::Json::boolean(deterministic));
  body.set("determinism_check", std::move(determinism));
  bench::writeBenchFile("governance", body);

  if (!monotone)
    std::cout << "NOTE: safe-variable count dropped as the budget grew\n";
  if (!deterministic)
    std::cout << "NOTE: budgeted verdicts differed across thread counts\n";
  return monotone && deterministic ? 0 : 1;
}
