// Resource governance: verdict quality vs. solver step budget.
//
// FormAD's step budget (-solver-budget) caps every solver check at a
// deterministic number of internal steps; checks that run out degrade the
// affected variable to an atomic adjoint instead of hanging or aborting.
// This bench sweeps the budget from starvation to unlimited on the repo's
// benchmark kernels and reports, per point,
//   - how many variables stay provably safe (shared adjoint access),
//   - how many pairs degraded (kept atomic purely by governance),
//   - how many checks hit the budget, and the analysis wall time,
// making the quality/effort trade-off a table instead of folklore. It also
// re-runs one starved configuration at 1 and 4 analysis threads and checks
// that every verdict-affecting counter matches exactly — the determinism
// contract budgets are designed around (steps are counted, never timed).
//
// Writes BENCH_governance.json through the shared writer (bench_common.h).
// `--smoke` runs a seconds-sized subset for the CI quick-bench step.
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "driver/driver.h"
#include "driver/report.h"
#include "exec/costmodel.h"
#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/lbm.h"
#include "kernels/stencil.h"
#include "parser/parser.h"

using namespace formad;

namespace {

struct SweepPoint {
  long long budget = 0;  // 0 = unlimited
  long long safeVars = 0, unsafeVars = 0;
  long long degradedPairs = 0, exhaustedChecks = 0;
  double seconds = 0.0;
};

long long safeCount(const core::KernelAnalysis& a) {
  long long n = 0;
  for (const auto& r : a.regions)
    for (const auto& v : r.vars) n += v.safe ? 1 : 0;
  return n;
}

long long varCount(const core::KernelAnalysis& a) {
  long long n = 0;
  for (const auto& r : a.regions) n += static_cast<long long>(r.vars.size());
  return n;
}

SweepPoint runPoint(const ir::Kernel& kernel, const kernels::KernelSpec& spec,
                    long long budget, int threads = 1) {
  driver::DriverOptions opts;
  opts.analysisThreads = threads;
  // The tiered fast paths (smt/fastpath.h) answer most benchmark queries
  // without a single counted solver step, which would make every budget
  // point identical. Sweeping with the fast path off measures what the
  // budget actually governs: the full decision procedures.
  opts.fastpath = smt::FastPathMode::Off;
  opts.solverStepBudget = budget;
  auto a = driver::analyze(kernel, spec.independents, spec.dependents, opts);
  SweepPoint p;
  p.budget = budget;
  p.safeVars = safeCount(a);
  p.unsafeVars = varCount(a) - p.safeVars;
  p.degradedPairs = a.degradedPairs();
  p.exhaustedChecks = a.budgetExhaustedChecks();
  p.seconds = a.analysisSeconds();
  return p;
}

// ----- Hybrid safeguard ablation ------------------------------------------

struct AblationConfig {
  std::string name;
  kernels::KernelSpec spec;
  std::function<void(exec::Inputs&)> bind;
};

/// Binds zero-ish adjoint seed arrays for every adjoint parameter (their
/// contents do not affect operation counts).
void bindAdjointSeeds(exec::Inputs& io,
                      const std::map<std::string, std::string>& adjParams) {
  for (const auto& [p, pb] : adjParams) {
    const exec::ArrayValue& a = io.array(p);
    std::vector<long long> dims;
    for (int k = 0; k < a.rank(); ++k) dims.push_back(a.dim(k));
    exec::ArrayValue& b = io.bindArray(pb, exec::ArrayValue::reals(dims));
    b.fill(1e-3);
  }
}

/// Profiles one application of `adjoint` and returns its simulated wall
/// time on `threads` threads (0 = fully serialized baseline).
double simulatedAdjointSeconds(
    const ir::Kernel& adjoint,
    const std::map<std::string, std::string>& adjParams,
    const std::function<void(exec::Inputs&)>& bind,
    const exec::CostParams& costs, int threads) {
  exec::Executor ex(adjoint);
  exec::Inputs io;
  bind(io);
  bindAdjointSeeds(io, adjParams);
  exec::ExecStats st =
      ex.run(io, exec::ExecOptions{exec::ExecMode::Profile, 1});
  return threads == 0 ? exec::serialTime(st.profile, costs)
                      : exec::runTime(st.profile, costs, threads);
}

struct GuardMix {
  long long shared = 0, atomic = 0, localAccumulate = 0;
};

GuardMix guardMixOf(const std::vector<ad::LoopGuardReport>& reports) {
  GuardMix m;
  for (const auto& rep : reports)
    for (const auto& d : rep.siteDecisions) {
      if (d.guard == ir::Guard::None) ++m.shared;
      else if (d.guard == ir::Guard::Atomic) ++m.atomic;
      else ++m.localAccumulate;
    }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  std::vector<std::pair<std::string, kernels::KernelSpec>> configs;
  configs.emplace_back("small_stencil_r2", kernels::stencilSpec(2));
  if (!smoke) {
    configs.emplace_back("large_stencil_r8", kernels::stencilSpec(8));
    configs.emplace_back("lbm", kernels::lbmSpec());
    configs.emplace_back("gfmc_split", kernels::gfmcSplitSpec());
  }
  configs.emplace_back("greengauss", kernels::greenGaussSpec());

  // 0 terminates each sweep = unlimited (the reference verdict).
  std::vector<long long> budgets =
      smoke ? std::vector<long long>{1, 16, 256, 0}
            : std::vector<long long>{1, 4, 16, 64, 256, 1024, 4096, 0};

  bench::Json sweepRows = bench::Json::array();
  bool monotone = true;
  for (const auto& [name, spec] : configs) {
    auto kernel = parser::parseKernel(spec.source);
    std::cout << "\n### " << name << ": verdict quality vs. step budget\n\n";
    driver::Table t({"budget", "safe vars", "atomic vars", "degraded pairs",
                     "exhausted checks", "time [ms]"});
    long long prevSafe = -1;
    bool prevUnlimited = false;
    for (long long budget : budgets) {
      SweepPoint p = runPoint(*kernel, spec, budget);
      t.addRow({budget == 0 ? "unlimited" : std::to_string(budget),
                std::to_string(p.safeVars), std::to_string(p.unsafeVars),
                std::to_string(p.degradedPairs),
                std::to_string(p.exhaustedChecks),
                driver::fmt(p.seconds * 1e3, 2)});
      // Bigger budgets can only recover verdicts, never lose them.
      if (prevSafe >= 0 && !prevUnlimited && p.safeVars < prevSafe)
        monotone = false;
      prevSafe = p.safeVars;
      prevUnlimited = budget == 0;
      bench::Json row = bench::Json::object();
      row.set("config", bench::Json::str(name));
      row.set("budget", bench::Json::integer(p.budget));
      row.set("unlimited", bench::Json::boolean(p.budget == 0));
      row.set("safe_vars", bench::Json::integer(p.safeVars));
      row.set("atomic_vars", bench::Json::integer(p.unsafeVars));
      row.set("degraded_pairs", bench::Json::integer(p.degradedPairs));
      row.set("exhausted_checks", bench::Json::integer(p.exhaustedChecks));
      row.set("seconds", bench::Json::num(p.seconds));
      sweepRows.push(std::move(row));
    }
    std::cout << t.str();
  }
  std::cout << "\nEvery budget point is a sound analysis: degraded pairs\n"
               "fall back to atomic adjoints, so the generated code is\n"
               "correct at any budget — only its scalability recovers as\n"
               "the budget grows toward the unlimited reference verdict.\n";

  // Determinism spot check: a starved run must produce identical
  // verdict-affecting counters at any thread count (steps, not seconds).
  std::cout << "\n### Budgeted-verdict determinism across thread counts\n\n";
  bench::Json determinism = bench::Json::array();
  bool deterministic = true;
  {
    const auto& [name, spec] = configs.front();
    auto kernel = parser::parseKernel(spec.source);
    const long long starved = 16;
    SweepPoint t1 = runPoint(*kernel, spec, starved, /*threads=*/1);
    SweepPoint t4 = runPoint(*kernel, spec, starved, /*threads=*/4);
    deterministic = t1.safeVars == t4.safeVars &&
                    t1.degradedPairs == t4.degradedPairs &&
                    t1.exhaustedChecks == t4.exhaustedChecks;
    std::cout << name << " @ budget " << starved << ": threads 1 vs 4 -> "
              << (deterministic ? "identical counters\n"
                                : "MISMATCH (determinism bug)\n");
    for (const SweepPoint* p : {&t1, &t4}) {
      bench::Json row = bench::Json::object();
      row.set("config", bench::Json::str(name));
      row.set("budget", bench::Json::integer(starved));
      row.set("threads", bench::Json::integer(p == &t1 ? 1 : 4));
      row.set("safe_vars", bench::Json::integer(p->safeVars));
      row.set("degraded_pairs", bench::Json::integer(p->degradedPairs));
      row.set("exhausted_checks", bench::Json::integer(p->exhaustedChecks));
      determinism.push(std::move(row));
    }
  }

  // Hybrid safeguard ablation: how much parallel speedup each safeguard
  // recovers as the solver budget shrinks. The whole-variable row is the
  // classic degradation (every increment of an unproven variable atomic);
  // the hybrid row consumes the per-site verdict map, keeps proven sites
  // plainly shared, and picks atomic vs. thread-local accumulation for the
  // residue with the cost model. Speedups are simulated on the calibrated
  // 18-core model from measured operation counts, so the rows are exact
  // and deterministic.
  std::cout << "\n### Hybrid safeguard: recovered speedup vs. step budget\n\n";
  const exec::CostParams costs;
  std::vector<AblationConfig> hybridConfigs;
  {
    AblationConfig st;
    st.name = "small_stencil_r2";
    st.spec = kernels::stencilSpec(2);
    st.bind = [](exec::Inputs& io) {
      kernels::Rng rng(2022);
      kernels::bindStencil(io, 2, 100'000, rng);
    };
    hybridConfigs.push_back(std::move(st));
    AblationConfig gf;
    gf.name = "gfmc_split";
    gf.spec = kernels::gfmcSplitSpec();
    gf.bind = [](exec::Inputs& io) {
      kernels::GfmcConfig cfg;
      cfg.ns = 48;
      cfg.nw = 256;
      cfg.npair = 48;
      cfg.nk = 8;
      kernels::Rng rng(2022);
      kernels::bindGfmc(io, cfg, rng);
    };
    hybridConfigs.push_back(std::move(gf));
  }
  const std::vector<long long> hybridBudgets =
      smoke ? std::vector<long long>{1, 0}
            : std::vector<long long>{1, 4, 16, 64, 0};
  bench::Json hybridRows = bench::Json::array();
  bool hybridRecovers = true;   // strictly more than whole-var when starved
  bool hybridDominates = true;  // never less at any budget
  for (const auto& cfg : hybridConfigs) {
    auto kernel = parser::parseKernel(cfg.spec.source);
    auto serialRes =
        driver::differentiate(*kernel, cfg.spec.independents,
                              cfg.spec.dependents, driver::AdjointMode::Serial,
                              /*omitTapeFreePrimalSweep=*/true);
    const double serialBase = simulatedAdjointSeconds(
        *serialRes.adjoint, serialRes.adjointParams, cfg.bind, costs, 0);

    std::cout << cfg.name << " (adjoint speedup vs. serial adjoint, "
              << costs.maxCores << "T simulated):\n";
    driver::Table t({"budget", "whole-var atomic", "hybrid", "shared sites",
                     "atomic sites", "local-accum sites"});
    for (long long budget : hybridBudgets) {
      driver::DriverOptions d;
      d.analysisThreads = 1;
      d.fastpath = smt::FastPathMode::Off;
      d.solverStepBudget = budget;
      d.omitTapeFreePrimalSweep = true;

      d.mode = driver::AdjointMode::FormAD;
      auto wholeRes = driver::differentiate(*kernel, cfg.spec.independents,
                                            cfg.spec.dependents, d);
      d.mode = driver::AdjointMode::Hybrid;
      auto hybridRes = driver::differentiate(*kernel, cfg.spec.independents,
                                             cfg.spec.dependents, d);

      const double wholeSpeedup =
          serialBase / simulatedAdjointSeconds(*wholeRes.adjoint,
                                               wholeRes.adjointParams,
                                               cfg.bind, costs, costs.maxCores);
      const double hybridSpeedup =
          serialBase /
          simulatedAdjointSeconds(*hybridRes.adjoint, hybridRes.adjointParams,
                                  cfg.bind, costs, costs.maxCores);
      const GuardMix mix = guardMixOf(hybridRes.loopReports);

      t.addRow({budget == 0 ? "unlimited" : std::to_string(budget),
                driver::fmtSpeedup(wholeSpeedup),
                driver::fmtSpeedup(hybridSpeedup),
                std::to_string(mix.shared), std::to_string(mix.atomic),
                std::to_string(mix.localAccumulate)});
      // The starved points are where site granularity must pay off: the
      // acceptance bar is *strictly* more recovered speedup than the
      // whole-variable fallback. At unlimited budget both modes emit the
      // same ungated adjoint, so only >= is required there.
      if (budget == 1 && hybridSpeedup <= wholeSpeedup) hybridRecovers = false;
      if (hybridSpeedup < wholeSpeedup - 1e-12) hybridDominates = false;

      bench::Json row = bench::Json::object();
      row.set("config", bench::Json::str(cfg.name));
      row.set("budget", bench::Json::integer(budget));
      row.set("unlimited", bench::Json::boolean(budget == 0));
      row.set("whole_var_atomic_speedup", bench::Json::num(wholeSpeedup));
      row.set("hybrid_speedup", bench::Json::num(hybridSpeedup));
      row.set("hybrid_shared_sites", bench::Json::integer(mix.shared));
      row.set("hybrid_atomic_sites", bench::Json::integer(mix.atomic));
      row.set("hybrid_local_accumulate_sites",
              bench::Json::integer(mix.localAccumulate));
      hybridRows.push(std::move(row));
    }
    std::cout << t.str() << "\n";
  }

  // The hybrid report (per-site verdict lines included) must be
  // byte-identical at any analysis thread count, like every other report.
  bool hybridReportDeterministic = true;
  {
    const auto& cfg = hybridConfigs.front();
    auto kernel = parser::parseKernel(cfg.spec.source);
    driver::DriverOptions d;
    d.mode = driver::AdjointMode::Hybrid;
    d.fastpath = smt::FastPathMode::Off;
    d.solverStepBudget = 1;
    std::string reference;
    for (int threads : {1, 2, 4, 8}) {
      d.analysisThreads = threads;
      auto a = driver::analyze(*kernel, cfg.spec.independents,
                               cfg.spec.dependents, d);
      std::string report = core::describe(a, /*includeTiming=*/false);
      if (reference.empty()) reference = report;
      else if (report != reference) hybridReportDeterministic = false;
    }
    std::cout << cfg.name
              << " hybrid report @ 1/2/4/8 analysis threads: "
              << (hybridReportDeterministic ? "byte-identical\n"
                                            : "MISMATCH (determinism bug)\n");
  }

  bench::Json body = bench::Json::object();
  body.set("smoke", bench::Json::boolean(smoke));
  body.set("budget_sweep", std::move(sweepRows));
  body.set("safe_vars_monotone_in_budget", bench::Json::boolean(monotone));
  body.set("budgeted_verdicts_thread_deterministic",
           bench::Json::boolean(deterministic));
  body.set("determinism_check", std::move(determinism));
  body.set("hybrid_ablation", std::move(hybridRows));
  body.set("hybrid_recovers_more_than_whole_var_atomic",
           bench::Json::boolean(hybridRecovers));
  body.set("hybrid_never_below_whole_var",
           bench::Json::boolean(hybridDominates));
  body.set("hybrid_report_thread_deterministic",
           bench::Json::boolean(hybridReportDeterministic));
  bench::writeBenchFile("governance", body);

  if (!monotone)
    std::cout << "NOTE: safe-variable count dropped as the budget grew\n";
  if (!deterministic)
    std::cout << "NOTE: budgeted verdicts differed across thread counts\n";
  if (!hybridRecovers)
    std::cout << "NOTE: hybrid failed to beat whole-variable atomic when "
                 "starved\n";
  if (!hybridReportDeterministic)
    std::cout << "NOTE: hybrid reports differed across analysis threads\n";
  return monotone && deterministic && hybridRecovers && hybridDominates &&
                 hybridReportDeterministic
             ? 0
             : 1;
}
