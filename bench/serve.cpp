// High-traffic serving workload for the analysis daemon (DESIGN.md §11).
//
// Replays a mixed batch of protocol requests — analyze on the paper
// kernels (stencils, GFMC, Green-Gauss, indirect gather, LBM), racecheck
// on the racy mutants, lint, stats, plus a family of localized-edit
// gather variants (the same kernel with a shifting constant offset, the
// serving analogue of bench/incremental's edited phase) — against an
// in-process AnalysisServer, from several concurrent client threads.
//
// Two phases over one persistent store directory:
//
//   cold  fresh daemon, empty store: every task is proven and persisted;
//   warm  fresh daemon, populated store: repeated kernels splice from
//         disk into the shared memory layer and every later repetition
//         hits memory.
//
// Reports throughput, per-request latency percentiles (p50/p95/p99), and
// the task-level cache hit rate per phase into BENCH_serve.json. The warm
// phase must reach a >= 90% analyze-task hit rate and every response must
// come back ok — either failure exits nonzero (the CI serve-smoke job
// keys off this).
//
//   bench/serve [--smoke]   (--smoke shrinks kernel sizes, not the
//                            request count: both modes replay >= 200)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/indirect.h"
#include "kernels/lbm.h"
#include "kernels/mutants.h"
#include "kernels/stencil.h"
#include "server/json.h"
#include "server/server.h"
#include "support/diagnostics.h"

using namespace formad;

namespace {

struct WorkItem {
  std::string frame;
  std::string what;  // label for failure messages
};

std::string analyzeFrame(const kernels::KernelSpec& spec, int id) {
  server::JsonValue req = server::JsonValue::object();
  req.set("id", server::JsonValue::integer(id));
  req.set("op", server::JsonValue::str("analyze"));
  req.set("source", server::JsonValue::str(spec.source));
  server::JsonValue indeps = server::JsonValue::array();
  for (const auto& v : spec.independents)
    indeps.push(server::JsonValue::str(v));
  req.set("independents", std::move(indeps));
  server::JsonValue deps = server::JsonValue::array();
  for (const auto& v : spec.dependents) deps.push(server::JsonValue::str(v));
  req.set("dependents", std::move(deps));
  return req.dump();
}

std::string racecheckFrame(const kernels::KernelSpec& spec, int id) {
  server::JsonValue req = server::JsonValue::object();
  req.set("id", server::JsonValue::integer(id));
  req.set("op", server::JsonValue::str("racecheck"));
  req.set("source", server::JsonValue::str(spec.source));
  return req.dump();
}

std::string lintFrame(const kernels::KernelSpec& spec, int id) {
  server::JsonValue req = server::JsonValue::object();
  req.set("id", server::JsonValue::integer(id));
  req.set("op", server::JsonValue::str("lint"));
  req.set("source", server::JsonValue::str(spec.source));
  return req.dump();
}

std::string statsFrame(int id) {
  server::JsonValue req = server::JsonValue::object();
  req.set("id", server::JsonValue::integer(id));
  req.set("op", server::JsonValue::str("stats"));
  return req.dump();
}

/// The localized-edit family: one gather kernel per constant offset. Each
/// offset is distinct content (distinct task fingerprints), so the cold
/// phase proves each once; repetitions within and across phases hit.
kernels::KernelSpec gatherVariant(int offset) {
  kernels::KernelSpec spec;
  spec.name = "gather_off" + std::to_string(offset);
  spec.source =
      "kernel " + spec.name +
      "(n: int in, x: real[] in, y: real[] inout) {\n"
      "  parallel for i = 0 : n shared(y, x) {\n"
      "    y[i] = y[i] + x[i + " + std::to_string(offset) + "];\n"
      "  }\n"
      "}\n";
  spec.independents = {"x"};
  spec.dependents = {"y"};
  return spec;
}

/// One round of the mixed workload (17 requests). `round` seeds ids only.
void appendRound(std::vector<WorkItem>& out, int round, bool smoke) {
  int id = round * 100;
  auto add = [&](std::string frame, const std::string& what) {
    out.push_back(WorkItem{std::move(frame), what});
  };
  // Paper kernels under analyze.
  add(analyzeFrame(kernels::stencilSpec(1), ++id), "analyze stencil1");
  add(analyzeFrame(kernels::stencilSpec(smoke ? 2 : 4), ++id),
      "analyze stencil_large");
  add(analyzeFrame(kernels::gfmcSplitSpec(), ++id), "analyze gfmc_split");
  add(analyzeFrame(kernels::gfmcFusedSpec(), ++id), "analyze gfmc_fused");
  add(analyzeFrame(kernels::greenGaussSpec(), ++id), "analyze greengauss");
  add(analyzeFrame(kernels::indirectSpec(), ++id), "analyze indirect");
  if (!smoke) add(analyzeFrame(kernels::lbmSpec(), ++id), "analyze lbm");
  // Localized-edit variants: four offsets per round.
  for (int off = 0; off < 4; ++off)
    add(analyzeFrame(gatherVariant(off), ++id),
        "analyze gather_off" + std::to_string(off));
  // Racecheck on the racy mutants (and one clean kernel).
  add(racecheckFrame(kernels::stencilRacySpec(), ++id),
      "racecheck stencil_racy");
  add(racecheckFrame(kernels::gatherRacySpec(), ++id),
      "racecheck gather_racy");
  add(racecheckFrame(kernels::sumRacySpec(), ++id), "racecheck sum_racy");
  add(racecheckFrame(kernels::stencilSpec(1), ++id), "racecheck stencil1");
  // Lint + stats round out the mix.
  add(lintFrame(kernels::greenGaussSpec(), ++id), "lint greengauss");
  add(statsFrame(++id), "stats");
}

struct PhaseStats {
  double wallSeconds = 0;
  std::vector<double> latenciesMs;
  long long failures = 0;
  double taskHitRate = 0;
  long long taskMemoryHits = 0;

  [[nodiscard]] double percentile(double p) const {
    if (latenciesMs.empty()) return 0;
    std::vector<double> sorted = latenciesMs;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * (static_cast<double>(sorted.size()) - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }
};

/// Replays the workload from `clients` threads against a fresh daemon on
/// `cacheDir`, checking every response parses and reports ok.
PhaseStats runPhase(const std::vector<WorkItem>& work, int clients,
                    int sessions, const std::string& cacheDir) {
  server::ServeOptions opts;
  opts.sessions = sessions;
  opts.analysisThreads = 1;
  opts.cacheDir = cacheDir;
  server::AnalysisServer daemon(opts);

  PhaseStats stats;
  stats.latenciesMs.resize(work.size(), 0.0);
  std::vector<long long> failures(static_cast<size_t>(clients), 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Client c takes every clients-th request: all clients interleave
      // over the same mixed stream.
      for (size_t i = static_cast<size_t>(c); i < work.size();
           i += static_cast<size_t>(clients)) {
        const auto s0 = std::chrono::steady_clock::now();
        const std::string line = daemon.process(work[i].frame);
        const auto s1 = std::chrono::steady_clock::now();
        stats.latenciesMs[i] =
            std::chrono::duration<double, std::milli>(s1 - s0).count();
        try {
          server::JsonValue resp = server::parseJson(line);
          const server::JsonValue* ok = resp.find("ok");
          if (ok == nullptr || ok->kind() != server::JsonValue::Kind::Bool ||
              !ok->asBool()) {
            ++failures[static_cast<size_t>(c)];
            std::cerr << "FAIL " << work[i].what << ": " << line << "\n";
          }
        } catch (const Error& e) {
          ++failures[static_cast<size_t>(c)];
          std::cerr << "FAIL " << work[i].what
                    << ": unparseable response: " << e.what() << "\n";
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  stats.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  for (long long f : failures) stats.failures += f;

  const smt::PersistentVerdictStore::Stats s = daemon.store().stats();
  const long long lookups = s.taskHits + s.taskMisses;
  stats.taskHitRate =
      lookups == 0 ? 0.0
                   : static_cast<double>(s.taskHits) /
                         static_cast<double>(lookups);
  stats.taskMemoryHits = s.taskMemoryHits;
  return stats;
}

bench::Json phaseJson(const std::string& name, const PhaseStats& s,
                      size_t requests) {
  bench::Json j = bench::Json::object();
  j.set("phase", bench::Json::str(name));
  j.set("requests", bench::Json::integer(static_cast<long long>(requests)));
  j.set("wall_s", bench::Json::num(s.wallSeconds));
  j.set("throughput_rps",
        bench::Json::num(s.wallSeconds > 0
                             ? static_cast<double>(requests) / s.wallSeconds
                             : 0));
  bench::Json lat = bench::Json::object();
  lat.set("p50", bench::Json::num(s.percentile(50)));
  lat.set("p95", bench::Json::num(s.percentile(95)));
  lat.set("p99", bench::Json::num(s.percentile(99)));
  j.set("latency_ms", std::move(lat));
  j.set("task_hit_rate", bench::Json::num(s.taskHitRate));
  j.set("task_memory_hits", bench::Json::integer(s.taskMemoryHits));
  j.set("failures", bench::Json::integer(s.failures));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  const int kRounds = 13;  // 13 rounds x >= 16 requests/round >= 208
  const int kClients = 4;
  const int kSessions = 2;

  std::vector<WorkItem> work;
  for (int round = 0; round < kRounds; ++round)
    appendRound(work, round, smoke);
  std::cout << "serve workload: " << work.size() << " requests ("
            << kRounds << " rounds), " << kClients << " clients, "
            << kSessions << " sessions" << (smoke ? ", smoke" : "") << "\n";

  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "formad_bench_serve_store")
          .string();
  std::filesystem::remove_all(cacheDir);

  const PhaseStats cold = runPhase(work, kClients, kSessions, cacheDir);
  const PhaseStats warm = runPhase(work, kClients, kSessions, cacheDir);
  std::filesystem::remove_all(cacheDir);

  for (const auto* phase : {&cold, &warm}) {
    const bool isCold = phase == &cold;
    std::printf(
        "%-5s %4zu req  %7.2f req/s  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f "
        "ms  task hit rate %.3f  failures %lld\n",
        isCold ? "cold" : "warm", work.size(),
        phase->wallSeconds > 0
            ? static_cast<double>(work.size()) / phase->wallSeconds
            : 0,
        phase->percentile(50), phase->percentile(95), phase->percentile(99),
        phase->taskHitRate, phase->failures);
  }

  bench::Json body = bench::Json::object();
  body.set("smoke", bench::Json::boolean(smoke));
  body.set("clients", bench::Json::integer(kClients));
  body.set("sessions", bench::Json::integer(kSessions));
  bench::Json phases = bench::Json::array();
  phases.push(phaseJson("cold", cold, work.size()));
  phases.push(phaseJson("warm", warm, work.size()));
  body.set("phases", std::move(phases));
  bench::writeBenchFile("serve", body);

  bool ok = true;
  if (cold.failures + warm.failures > 0) {
    std::cout << "FAIL: " << (cold.failures + warm.failures)
              << " request(s) did not come back ok\n";
    ok = false;
  }
  if (warm.taskHitRate < 0.9) {
    std::cout << "FAIL: warm task hit rate " << warm.taskHitRate
              << " below the 0.9 floor\n";
    ok = false;
  }
  if (work.size() < 200) {
    std::cout << "FAIL: workload shrank below 200 requests\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
