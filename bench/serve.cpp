// High-traffic serving workload for the analysis daemon (DESIGN.md §11).
//
// Replays a mixed batch of protocol requests — analyze on the paper
// kernels (stencils, GFMC, Green-Gauss, indirect gather, LBM), racecheck
// on the racy mutants, lint, stats, plus a family of localized-edit
// gather variants (the same kernel with a shifting constant offset, the
// serving analogue of bench/incremental's edited phase) — against an
// in-process AnalysisServer, from several concurrent client threads.
//
// Two phases over one persistent store directory:
//
//   cold  fresh daemon, empty store: every task is proven and persisted;
//   warm  fresh daemon, populated store: repeated kernels splice from
//         disk into the shared memory layer and every later repetition
//         hits memory.
//
// Reports throughput, per-request latency percentiles (p50/p95/p99), and
// the task-level cache hit rate per phase into BENCH_serve.json. The warm
// phase must reach a >= 90% analyze-task hit rate and every response must
// come back ok — either failure exits nonzero (the CI serve-smoke job
// keys off this).
//
//   bench/serve [--smoke]   (--smoke shrinks kernel sizes, not the
//                            request count: both modes replay >= 200)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/indirect.h"
#include "kernels/lbm.h"
#include "kernels/mutants.h"
#include "kernels/stencil.h"
#include "server/json.h"
#include "server/server.h"
#include "support/diagnostics.h"
#include "support/percentile.h"

using namespace formad;

namespace {

struct WorkItem {
  std::string frame;
  std::string what;  // label for failure messages
};

std::string analyzeFrame(const kernels::KernelSpec& spec, int id) {
  server::JsonValue req = server::JsonValue::object();
  req.set("id", server::JsonValue::integer(id));
  req.set("op", server::JsonValue::str("analyze"));
  req.set("source", server::JsonValue::str(spec.source));
  server::JsonValue indeps = server::JsonValue::array();
  for (const auto& v : spec.independents)
    indeps.push(server::JsonValue::str(v));
  req.set("independents", std::move(indeps));
  server::JsonValue deps = server::JsonValue::array();
  for (const auto& v : spec.dependents) deps.push(server::JsonValue::str(v));
  req.set("dependents", std::move(deps));
  return req.dump();
}

std::string racecheckFrame(const kernels::KernelSpec& spec, int id) {
  server::JsonValue req = server::JsonValue::object();
  req.set("id", server::JsonValue::integer(id));
  req.set("op", server::JsonValue::str("racecheck"));
  req.set("source", server::JsonValue::str(spec.source));
  return req.dump();
}

std::string lintFrame(const kernels::KernelSpec& spec, int id) {
  server::JsonValue req = server::JsonValue::object();
  req.set("id", server::JsonValue::integer(id));
  req.set("op", server::JsonValue::str("lint"));
  req.set("source", server::JsonValue::str(spec.source));
  return req.dump();
}

std::string statsFrame(int id) {
  server::JsonValue req = server::JsonValue::object();
  req.set("id", server::JsonValue::integer(id));
  req.set("op", server::JsonValue::str("stats"));
  return req.dump();
}

/// The localized-edit family: one gather kernel per constant offset. Each
/// offset is distinct content (distinct task fingerprints), so the cold
/// phase proves each once; repetitions within and across phases hit.
kernels::KernelSpec gatherVariant(int offset) {
  kernels::KernelSpec spec;
  spec.name = "gather_off" + std::to_string(offset);
  spec.source =
      "kernel " + spec.name +
      "(n: int in, x: real[] in, y: real[] inout) {\n"
      "  parallel for i = 0 : n shared(y, x) {\n"
      "    y[i] = y[i] + x[i + " + std::to_string(offset) + "];\n"
      "  }\n"
      "}\n";
  spec.independents = {"x"};
  spec.dependents = {"y"};
  return spec;
}

/// One round of the mixed workload (17 requests). `round` seeds ids only.
void appendRound(std::vector<WorkItem>& out, int round, bool smoke) {
  int id = round * 100;
  auto add = [&](std::string frame, const std::string& what) {
    out.push_back(WorkItem{std::move(frame), what});
  };
  // Paper kernels under analyze.
  add(analyzeFrame(kernels::stencilSpec(1), ++id), "analyze stencil1");
  add(analyzeFrame(kernels::stencilSpec(smoke ? 2 : 4), ++id),
      "analyze stencil_large");
  add(analyzeFrame(kernels::gfmcSplitSpec(), ++id), "analyze gfmc_split");
  add(analyzeFrame(kernels::gfmcFusedSpec(), ++id), "analyze gfmc_fused");
  add(analyzeFrame(kernels::greenGaussSpec(), ++id), "analyze greengauss");
  add(analyzeFrame(kernels::indirectSpec(), ++id), "analyze indirect");
  if (!smoke) add(analyzeFrame(kernels::lbmSpec(), ++id), "analyze lbm");
  // Localized-edit variants: four offsets per round.
  for (int off = 0; off < 4; ++off)
    add(analyzeFrame(gatherVariant(off), ++id),
        "analyze gather_off" + std::to_string(off));
  // Racecheck on the racy mutants (and one clean kernel).
  add(racecheckFrame(kernels::stencilRacySpec(), ++id),
      "racecheck stencil_racy");
  add(racecheckFrame(kernels::gatherRacySpec(), ++id),
      "racecheck gather_racy");
  add(racecheckFrame(kernels::sumRacySpec(), ++id), "racecheck sum_racy");
  add(racecheckFrame(kernels::stencilSpec(1), ++id), "racecheck stencil1");
  // Lint + stats round out the mix.
  add(lintFrame(kernels::greenGaussSpec(), ++id), "lint greengauss");
  add(statsFrame(++id), "stats");
}

using support::percentileOf;

struct PhaseStats {
  double wallSeconds = 0;
  std::vector<double> latenciesMs;
  long long failures = 0;
  double taskHitRate = 0;
  long long taskMemoryHits = 0;

  [[nodiscard]] double percentile(double p) const {
    return percentileOf(latenciesMs, p);
  }
};

/// Replays the workload from `clients` threads against a fresh daemon on
/// `cacheDir`, checking every response parses and reports ok.
PhaseStats runPhase(const std::vector<WorkItem>& work, int clients,
                    int sessions, const std::string& cacheDir) {
  server::ServeOptions opts;
  opts.sessions = sessions;
  opts.analysisThreads = 1;
  opts.cacheDir = cacheDir;
  server::AnalysisServer daemon(opts);

  PhaseStats stats;
  stats.latenciesMs.resize(work.size(), 0.0);
  std::vector<long long> failures(static_cast<size_t>(clients), 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Client c takes every clients-th request: all clients interleave
      // over the same mixed stream.
      for (size_t i = static_cast<size_t>(c); i < work.size();
           i += static_cast<size_t>(clients)) {
        const auto s0 = std::chrono::steady_clock::now();
        const std::string line = daemon.process(work[i].frame);
        const auto s1 = std::chrono::steady_clock::now();
        stats.latenciesMs[i] =
            std::chrono::duration<double, std::milli>(s1 - s0).count();
        try {
          server::JsonValue resp = server::parseJson(line);
          const server::JsonValue* ok = resp.find("ok");
          if (ok == nullptr || ok->kind() != server::JsonValue::Kind::Bool ||
              !ok->asBool()) {
            ++failures[static_cast<size_t>(c)];
            std::cerr << "FAIL " << work[i].what << ": " << line << "\n";
          }
        } catch (const Error& e) {
          ++failures[static_cast<size_t>(c)];
          std::cerr << "FAIL " << work[i].what
                    << ": unparseable response: " << e.what() << "\n";
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  stats.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  for (long long f : failures) stats.failures += f;

  const smt::PersistentVerdictStore::Stats s = daemon.store().stats();
  const long long lookups = s.taskHits + s.taskMisses;
  stats.taskHitRate =
      lookups == 0 ? 0.0
                   : static_cast<double>(s.taskHits) /
                         static_cast<double>(lookups);
  stats.taskMemoryHits = s.taskMemoryHits;
  return stats;
}

// ------------------------------------------------ contention section
//
// K clients race the SAME cold kernel through a shared-pool daemon while
// a lint/stats background churns the other dispatch threads (DESIGN.md
// §12). Single-flight must collapse the duplicate proofs: across every
// racing client and round, the store performs exactly as many fresh task
// evaluations as ONE single-session cold run — everything else joins
// in-flight work or hits the shared memory layer.

struct ContentionStats {
  double wallSeconds = 0;
  std::vector<double> analyzeLatenciesMs;  // the racing analyzes only
  long long failures = 0;
  long long taskStores = 0;
  long long taskHits = 0;
  long long flightClaims = 0;
  long long flightJoins = 0;
  long long flightUnclaims = 0;
  double dedupRate = 0;  // duplicates absorbed / duplicate opportunities
};

/// One single-session daemon analyzing `hot` once: the fresh-work
/// reference the contention floor is measured against.
long long referenceTaskStores(const kernels::KernelSpec& hot) {
  server::ServeOptions opts;
  opts.sessions = 1;
  server::AnalysisServer daemon(opts);
  const std::string line = daemon.process(analyzeFrame(hot, 1));
  server::JsonValue resp = server::parseJson(line);
  const server::JsonValue* ok = resp.find("ok");
  if (ok == nullptr || !ok->asBool()) {
    std::cerr << "FAIL contention reference: " << line << "\n";
    return -1;
  }
  return daemon.store().stats().taskStores;
}

ContentionStats runContention(const kernels::KernelSpec& hot, int clients,
                              int rounds) {
  server::ServeOptions opts;
  opts.sessions = clients;  // one dispatch thread per racing client
  opts.analysisThreads = 0;
  server::AnalysisServer daemon(opts);

  ContentionStats stats;
  stats.analyzeLatenciesMs.resize(
      static_cast<size_t>(clients) * static_cast<size_t>(rounds), 0.0);
  std::vector<long long> failures(static_cast<size_t>(clients), 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c, round] {
        auto check = [&](const std::string& line, const char* what) {
          try {
            server::JsonValue resp = server::parseJson(line);
            const server::JsonValue* ok = resp.find("ok");
            if (ok == nullptr ||
                ok->kind() != server::JsonValue::Kind::Bool ||
                !ok->asBool()) {
              ++failures[static_cast<size_t>(c)];
              std::cerr << "FAIL contention " << what << ": " << line
                        << "\n";
            }
          } catch (const Error& e) {
            ++failures[static_cast<size_t>(c)];
            std::cerr << "FAIL contention " << what
                      << ": unparseable response: " << e.what() << "\n";
          }
        };
        const int id = round * 1000 + c * 10;
        const auto s0 = std::chrono::steady_clock::now();
        const std::string line = daemon.process(analyzeFrame(hot, id));
        const auto s1 = std::chrono::steady_clock::now();
        stats.analyzeLatenciesMs[static_cast<size_t>(round) *
                                     static_cast<size_t>(clients) +
                                 static_cast<size_t>(c)] =
            std::chrono::duration<double, std::milli>(s1 - s0).count();
        check(line, "analyze");
        // Mixed background on the same dispatch threads: lint + stats
        // churn dispatch without touching the verdict store, so the
        // store-level accounting below stays exact.
        check(daemon.process(lintFrame(kernels::greenGaussSpec(), id + 1)),
              "lint");
        check(daemon.process(statsFrame(id + 2)), "stats");
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  stats.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  for (long long f : failures) stats.failures += f;

  const smt::PersistentVerdictStore::Stats s = daemon.store().stats();
  stats.taskStores = s.taskStores;
  stats.taskHits = s.taskHits;
  stats.flightClaims = s.flightClaims;
  stats.flightJoins = s.flightJoins;
  stats.flightUnclaims = s.flightUnclaims;
  // Duplicate opportunities: every task lookup beyond the fresh ones.
  const long long lookups = s.taskHits + s.taskMisses;
  const long long duplicates = lookups - s.taskStores;
  stats.dedupRate =
      duplicates <= 0 ? 1.0
                      : static_cast<double>(s.taskHits + s.flightJoins) /
                            static_cast<double>(duplicates);
  return stats;
}

bench::Json contentionJson(const ContentionStats& s, int clients,
                           int rounds, long long refTaskStores) {
  bench::Json j = bench::Json::object();
  j.set("clients", bench::Json::integer(clients));
  j.set("rounds", bench::Json::integer(rounds));
  j.set("wall_s", bench::Json::num(s.wallSeconds));
  bench::Json lat = bench::Json::object();
  lat.set("p50", bench::Json::num(percentileOf(s.analyzeLatenciesMs, 50)));
  lat.set("p95", bench::Json::num(percentileOf(s.analyzeLatenciesMs, 95)));
  lat.set("p99", bench::Json::num(percentileOf(s.analyzeLatenciesMs, 99)));
  j.set("analyze_latency_ms", std::move(lat));
  j.set("task_stores", bench::Json::integer(s.taskStores));
  j.set("reference_task_stores", bench::Json::integer(refTaskStores));
  j.set("task_hits", bench::Json::integer(s.taskHits));
  j.set("flight_claims", bench::Json::integer(s.flightClaims));
  j.set("flight_joins", bench::Json::integer(s.flightJoins));
  j.set("flight_unclaims", bench::Json::integer(s.flightUnclaims));
  j.set("dedup_rate", bench::Json::num(s.dedupRate));
  j.set("failures", bench::Json::integer(s.failures));
  return j;
}

bench::Json phaseJson(const std::string& name, const PhaseStats& s,
                      size_t requests) {
  bench::Json j = bench::Json::object();
  j.set("phase", bench::Json::str(name));
  j.set("requests", bench::Json::integer(static_cast<long long>(requests)));
  j.set("wall_s", bench::Json::num(s.wallSeconds));
  j.set("throughput_rps",
        bench::Json::num(s.wallSeconds > 0
                             ? static_cast<double>(requests) / s.wallSeconds
                             : 0));
  bench::Json lat = bench::Json::object();
  lat.set("p50", bench::Json::num(s.percentile(50)));
  lat.set("p95", bench::Json::num(s.percentile(95)));
  lat.set("p99", bench::Json::num(s.percentile(99)));
  j.set("latency_ms", std::move(lat));
  j.set("task_hit_rate", bench::Json::num(s.taskHitRate));
  j.set("task_memory_hits", bench::Json::integer(s.taskMemoryHits));
  j.set("failures", bench::Json::integer(s.failures));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  const int kRounds = 13;  // 13 rounds x >= 16 requests/round >= 208
  const int kClients = 4;
  const int kSessions = 2;

  std::vector<WorkItem> work;
  for (int round = 0; round < kRounds; ++round)
    appendRound(work, round, smoke);
  std::cout << "serve workload: " << work.size() << " requests ("
            << kRounds << " rounds), " << kClients << " clients, "
            << kSessions << " sessions" << (smoke ? ", smoke" : "") << "\n";

  const std::string cacheDir =
      (std::filesystem::temp_directory_path() / "formad_bench_serve_store")
          .string();
  std::filesystem::remove_all(cacheDir);

  const PhaseStats cold = runPhase(work, kClients, kSessions, cacheDir);
  const PhaseStats warm = runPhase(work, kClients, kSessions, cacheDir);
  std::filesystem::remove_all(cacheDir);

  // Contention: racing identical cold analyzes + mixed background. Smoke
  // shrinks the kernel and the fan-out, not the shape of the check.
  const int kContClients = smoke ? 4 : 8;
  const int kContRounds = smoke ? 2 : 3;
  const kernels::KernelSpec hot = kernels::stencilSpec(smoke ? 2 : 4);
  std::cout << "contention: " << kContClients << " clients x "
            << kContRounds << " rounds, kernel " << hot.name << "\n";
  const long long refTaskStores = referenceTaskStores(hot);
  const ContentionStats cont =
      runContention(hot, kContClients, kContRounds);

  for (const auto* phase : {&cold, &warm}) {
    const bool isCold = phase == &cold;
    std::printf(
        "%-5s %4zu req  %7.2f req/s  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f "
        "ms  task hit rate %.3f  failures %lld\n",
        isCold ? "cold" : "warm", work.size(),
        phase->wallSeconds > 0
            ? static_cast<double>(work.size()) / phase->wallSeconds
            : 0,
        phase->percentile(50), phase->percentile(95), phase->percentile(99),
        phase->taskHitRate, phase->failures);
  }
  std::printf(
      "cont  %4zu req  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f ms  "
      "fresh %lld/%lld  joins %lld  hits %lld  dedup %.3f  failures %lld\n",
      cont.analyzeLatenciesMs.size(), percentileOf(cont.analyzeLatenciesMs, 50),
      percentileOf(cont.analyzeLatenciesMs, 95),
      percentileOf(cont.analyzeLatenciesMs, 99), cont.taskStores,
      refTaskStores, cont.flightJoins, cont.taskHits, cont.dedupRate,
      cont.failures);

  bench::Json body = bench::Json::object();
  body.set("smoke", bench::Json::boolean(smoke));
  body.set("clients", bench::Json::integer(kClients));
  body.set("sessions", bench::Json::integer(kSessions));
  bench::Json phases = bench::Json::array();
  phases.push(phaseJson("cold", cold, work.size()));
  phases.push(phaseJson("warm", warm, work.size()));
  body.set("phases", std::move(phases));
  body.set("contention",
           contentionJson(cont, kContClients, kContRounds, refTaskStores));
  bench::writeBenchFile("serve", body);

  bool ok = true;
  if (cold.failures + warm.failures > 0) {
    std::cout << "FAIL: " << (cold.failures + warm.failures)
              << " request(s) did not come back ok\n";
    ok = false;
  }
  if (warm.taskHitRate < 0.9) {
    std::cout << "FAIL: warm task hit rate " << warm.taskHitRate
              << " below the 0.9 floor\n";
    ok = false;
  }
  if (work.size() < 200) {
    std::cout << "FAIL: workload shrank below 200 requests\n";
    ok = false;
  }
  // Contention floors: no failures, and dedup must be EFFECTIVE — the
  // racing clients' fresh task work collapses to exactly one cold run.
  if (refTaskStores < 0 || cont.failures > 0) {
    std::cout << "FAIL: contention section had failing requests\n";
    ok = false;
  }
  if (cont.taskStores != refTaskStores) {
    std::cout << "FAIL: contention performed " << cont.taskStores
              << " fresh task evaluations; single-flight floor is "
              << refTaskStores << " (one cold run)\n";
    ok = false;
  }
  if (cont.taskHits + cont.flightJoins <= 0) {
    std::cout << "FAIL: contention absorbed no duplicates "
              << "(joins + hits == 0)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
