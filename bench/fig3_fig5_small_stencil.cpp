// Reproduces paper Figures 3 and 5: absolute run time and parallel speedup
// of the small (3-point compact) stencil, 1M grid points, 1000 sweeps.
#include "bench_common.h"
#include "kernels/stencil.h"

int main() {
  using namespace formad;
  bench::FigureSetup setup;
  setup.name = "fig3_fig5_small_stencil";
  setup.title = "Small stencil — paper Fig. 3 (absolute) and Fig. 5 (speedup)";
  setup.spec = kernels::stencilSpec(1);
  const long long n = 1'000'000;
  setup.bind = [n](exec::Inputs& io) {
    kernels::Rng rng(2022);
    kernels::bindStencil(io, 1, n, rng);
  };
  setup.repetitions = 1000;
  setup.paperNotes = {
      {"primal serial", "2.05 s"},
      {"primal parallel (18T)", "0.146 s"},
      {"adjoint serial", "1.58 s"},
      {"adj-atomic best (1T)", "40.7 s"},
      {"adj-reduction best (1T)", "3.65 s"},
      {"adj-FormAD (18T)", "0.116 s"},
      {"primal speedup (18T)", "13.4x"},
      {"adj-FormAD speedup (18T)", "13.6x"},
  };

  auto result = bench::runFigure(setup);
  bench::printFigure(setup, result);
  bench::writeBenchJson(setup, result);
  return 0;
}
