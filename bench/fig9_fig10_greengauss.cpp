// Reproduces paper Figures 9 and 10: absolute run time and parallel speedup
// of the Green-Gauss gradient kernel, 100k-node linear mesh (2 colors),
// 10000 applications.
#include "bench_common.h"
#include "kernels/greengauss.h"

int main() {
  using namespace formad;
  bench::FigureSetup setup;
  setup.name = "fig9_fig10_greengauss";
  setup.title =
      "Green-Gauss gradients — paper Fig. 9 (absolute) and Fig. 10 (speedup)";
  setup.spec = kernels::greenGaussSpec();
  kernels::GreenGaussConfig cfg;
  cfg.nodes = 100000;
  setup.bind = [cfg](exec::Inputs& io) {
    kernels::Rng rng(2022);
    kernels::bindGreenGauss(io, cfg, rng);
  };
  setup.repetitions = 10000;
  setup.paperNotes = {
      {"primal serial", "9.064 s"},
      {"adjoint serial", "66.84 s (Tapenade tapes conservatively; our"
       " recompute-prelude adjoint is leaner — see EXPERIMENTS.md)"},
      {"adj-FormAD best (18T)", "24.32 s = 2.75x vs adjoint serial"},
      {"adj-reduction best (8T)", "85.77 s"},
      {"adj-atomic (1T)", "386 s, degrading with threads"},
      {"shape", "memory bound: modest primal/FormAD speedup, atomics and"
       " reductions never beat serial"},
  };

  auto result = bench::runFigure(setup);
  bench::printFigure(setup, result);
  bench::writeBenchJson(setup, result);
  return 0;
}
