// Outlook experiment (paper Sec. 8, future work): "We postulate that the
// method should in principle also apply to other shared-memory-parallel
// systems including GPUs, where avoidance of reductions or atomic updates
// could be even more beneficial."
//
// We probe that claim with the cost model: an accelerator-style parameter
// set (far more hardware threads, cheaper flops per lane, atomics with a
// steeper contention slope, privatization over thousands of lanes being
// prohibitive) applied to the same measured operation mixes. The gap
// between the FormAD version and the guarded versions widens with the
// thread count — the paper's postulate, quantified.
#include <iostream>

#include "bench_common.h"
#include "driver/report.h"
#include "kernels/gfmc.h"
#include "kernels/stencil.h"

using namespace formad;

namespace {

exec::CostParams acceleratorParams() {
  exec::CostParams p;           // start from the CPU-socket calibration
  p.maxCores = 1024;            // lanes
  p.flop /= 6;                  // per-lane throughput of a wide device
  p.intop /= 6;
  p.seqByte /= 4;
  p.seqBandwidth *= 3;          // HBM-class streaming
  p.randBandwidth *= 4;
  p.atomicOp *= 1.5;            // device atomics
  p.atomicContention = 6;       // thousands of lanes hammering one line
  p.shadowMergeByte *= 2;       // privatized copies x lanes are hopeless
  p.regionOverhead = 10e-6;     // kernel launch
  return p;
}

}  // namespace

int main() {
  bench::FigureSetup setup;
  setup.title = "GPU outlook (paper Sec. 8): small stencil on a simulated "
                "1024-lane accelerator";
  setup.spec = kernels::stencilSpec(1);
  setup.bind = [](exec::Inputs& io) {
    kernels::Rng rng(2022);
    kernels::bindStencil(io, 1, 1'000'000, rng);
  };
  setup.repetitions = 1000;
  setup.threads = {32, 128, 512, 1024};
  setup.params = acceleratorParams();

  auto result = bench::runFigure(setup);
  bench::printFigure(setup, result);

  // Headline ratio: how much worse the guarded versions get as lanes grow.
  driver::Table t({"lanes", "atomic / FormAD", "reduction / FormAD"});
  for (int lanes : setup.threads) {
    double f = result.seconds.at("adj-formad").at(lanes);
    t.addRow({std::to_string(lanes),
              driver::fmt(result.seconds.at("adj-atomic").at(lanes) / f, 1) + "x",
              driver::fmt(result.seconds.at("adj-reduction").at(lanes) / f, 1) + "x"});
  }
  std::cout << "Penalty of keeping safeguards (the paper's postulate —\n"
               "'even more beneficial' on accelerators):\n"
            << t.str() << "\n";
  return 0;
}
