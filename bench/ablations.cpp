// Ablation studies for the design choices called out in DESIGN.md:
//   A1  increment detection off (Sec. 5.4): increment targets become
//       overwrites and self-reads become adjoint increments — more pairs,
//       and possibly lost proofs.
//   A2  activity pruning off (Sec. 5.4): every real array is questioned.
//   A3  knowledge-consistency safeguard off (Sec. 5.5): fewer queries.
//   A4  dimension rule off: only flattened-offset proofs remain; per-column
//       accesses of multi-dimensional arrays become unprovable.
//   F1  fast path off: every check reaches the full solver (tier 2) —
//       identical verdicts and query counts, pure speed ablation.
//   F2  fast path syntactic-only: tier-0 deciders without the tier-1
//       arithmetic (GCD/stride/interval) tests.
//   AI1 abstract interpretation on: interval/congruence invariants feed
//       the knowledge base and the t1-absint/t1-hnf deciders — verdicts
//       can only improve (never weaken); tier-2 checks shift to tier 1.
//   AI2 absint on with the fast path off: isolates what the injected
//       invariants do to full-solver work alone.
// Writes BENCH_ablations.json through the shared writer (bench_common.h).
#include <iostream>

#include "bench_common.h"
#include "driver/report.h"
#include "formad/formad.h"
#include "kernels/gfmc.h"
#include "kernels/greengauss.h"
#include "kernels/lbm.h"
#include "kernels/stencil.h"
#include "parser/parser.h"

using namespace formad;

namespace {

struct Case {
  std::string name;
  kernels::KernelSpec spec;
};

struct Variant {
  std::string name;
  core::AnalyzeOptions opts;
};

std::string summarize(const core::KernelAnalysis& a) {
  int safe = 0, unsafe = 0;
  for (const auto& r : a.regions)
    for (const auto& v : r.vars) (v.safe ? safe : unsafe)++;
  return std::to_string(safe) + " safe / " + std::to_string(unsafe) +
         " unsafe, " + std::to_string(a.queries()) + " queries, model " +
         std::to_string(a.modelAssertions());
}

}  // namespace

int main() {
  std::vector<Case> cases = {
      {"stencil1", kernels::stencilSpec(1)},
      {"stencil8", kernels::stencilSpec(8)},
      {"gfmc", kernels::gfmcSplitSpec()},
      {"gfmc*", kernels::gfmcFusedSpec()},
      {"lbm", kernels::lbmSpec()},
      {"greengauss", kernels::greenGaussSpec()},
  };

  std::vector<Variant> variants;
  variants.push_back({"baseline", {}});
  {
    core::AnalyzeOptions o;
    o.model.incrementDetection = false;
    variants.push_back({"A1 no-increment-detection", o});
  }
  {
    core::AnalyzeOptions o;
    o.model.activityPruning = false;
    variants.push_back({"A2 no-activity-pruning", o});
  }
  {
    core::AnalyzeOptions o;
    o.exploit.checkKnowledgeConsistency = false;
    variants.push_back({"A3 no-consistency-checks", o});
  }
  {
    core::AnalyzeOptions o;
    o.exploit.useDimensionRule = false;
    variants.push_back({"A4 no-dimension-rule", o});
  }
  {
    core::AnalyzeOptions o;
    o.exploit.fastpath = smt::FastPathMode::Off;
    variants.push_back({"F1 fastpath-off", o});
  }
  {
    core::AnalyzeOptions o;
    o.exploit.fastpath = smt::FastPathMode::Syntactic;
    variants.push_back({"F2 fastpath-syntactic", o});
  }
  {
    core::AnalyzeOptions o;
    o.model.absint = true;
    variants.push_back({"AI1 absint-on", o});
  }
  {
    core::AnalyzeOptions o;
    o.model.absint = true;
    o.exploit.fastpath = smt::FastPathMode::Off;
    variants.push_back({"AI2 absint-no-fastpath", o});
  }

  std::cout << "\n### FormAD ablations (verdicts and query counts)\n\n";
  driver::Table table({"kernel", "variant", "result", "tier-2"});
  bench::Json rows = bench::Json::array();
  for (const auto& c : cases) {
    auto kernel = parser::parseKernel(c.spec.source);
    for (const auto& v : variants) {
      auto a = core::analyzeKernel(*kernel, c.spec.independents,
                                   c.spec.dependents, v.opts);
      table.addRow({c.name, v.name, summarize(a),
                    std::to_string(a.tier2Checks())});
      int safe = 0, unsafe = 0;
      for (const auto& r : a.regions)
        for (const auto& var : r.vars) (var.safe ? safe : unsafe)++;
      bench::Json row = bench::Json::object();
      row.set("kernel", bench::Json::str(c.name));
      row.set("variant", bench::Json::str(v.name));
      row.set("safe_vars", bench::Json::integer(safe));
      row.set("unsafe_vars", bench::Json::integer(unsafe));
      row.set("model_size", bench::Json::integer(a.modelAssertions()));
      row.set("tiers", bench::tierCountsJson(a));
      rows.push(std::move(row));
    }
  }
  {
    bench::Json body = bench::Json::object();
    body.set("rows", std::move(rows));
    bench::writeBenchFile("ablations", body);
  }
  std::cout << table.str();
  std::cout <<
      "\nReadings:\n"
      "  A1: without increment detection the compact stencils lose their\n"
      "      read-only adjoint of unew (extra pairs), though knowledge\n"
      "      still proves them; pair counts rise everywhere.\n"
      "  A2: without activity pruning, inactive arrays are questioned too;\n"
      "      the stencils' (inactive) weight arrays are then flagged unsafe\n"
      "      — activity analysis is what keeps them out of the adjoint.\n"
      "  A3: dropping the paper's assert(check()==SAT) safeguard removes\n"
      "      one query per knowledge assertion (compare the totals), at\n"
      "      the price of not detecting racy primals.\n"
      "  A4: without the per-dimension rule, only exact-match offset\n"
      "      proofs survive; GFMC's spin-flip accesses (disjoint in the\n"
      "      walker dimension) become unprovable.\n"
      "  F1/F2: identical verdicts and query counts to baseline — the\n"
      "      fast path is exact; the tier-2 column shows how many checks\n"
      "      still reach the full solver under each mode.\n"
      "  AI1: verdicts match baseline on every paper kernel (the sound\n"
      "      invariants can only improve verdicts, never weaken them);\n"
      "      the invariants grow the model slightly (stride loops) and\n"
      "      the t1-absint/t1-hnf deciders drain the tier-2 column to 0\n"
      "      full-solver checks on all six kernels.\n"
      "  AI2: with the fast path off every check still reaches the\n"
      "      solver, so this row isolates the invariants' effect on\n"
      "      solver work alone.\n\n";
  return 0;
}
