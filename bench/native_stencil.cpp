// Real wall-clock benchmark of *generated C code* (single thread — this
// container has one core): the small compact stencil's primal and adjoint
// program versions are emitted by the C backend, compiled with the system
// compiler at -O2, and timed. This anchors the simulator's central claim
// with hardware evidence: even without any contention, guarding the
// adjoint increments with atomics costs an order of magnitude (the paper's
// 1-thread numbers: primal 2.05 s vs atomic adjoint 40.7 s, i.e. ~20x).
#include <chrono>
#include <iostream>

#include "codegen/native.h"
#include "driver/driver.h"
#include "driver/report.h"
#include "kernels/stencil.h"
#include "parser/parser.h"

using namespace formad;

namespace {

double timeKernel(codegen::NativeKernel& native, exec::Inputs& io,
                  int repetitions) {
  native.run(io);  // warm-up
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repetitions; ++r) native.run(io);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         repetitions;
}

}  // namespace

int main() {
  const long long n = 1'000'000;
  const int reps = 5;
  auto spec = kernels::stencilSpec(1);
  auto primal = parser::parseKernel(spec.source);

  // Single-threaded measurements: emit without OpenMP pragmas so the
  // compiler sees plain loops (the atomic version keeps its atomics via
  // gcc builtins only when OpenMP is on, so it is emitted with pragmas but
  // run with one thread).
  codegen::CgenOptions serialOpts;
  serialOpts.openmp = false;

  struct Row {
    std::string name;
    double seconds;
  };
  std::vector<Row> rows;

  auto bindIo = [&](exec::Inputs& io, bool adjoints) {
    kernels::Rng rng(7);
    kernels::bindStencil(io, 1, n, rng);
    if (adjoints) {
      io.bindArray("uoldb", exec::ArrayValue::reals({n}));
      io.bindArray("unewb", exec::ArrayValue::reals({n})).fill(1.0);
    }
  };

  {
    codegen::NativeKernel native(*primal, serialOpts);
    exec::Inputs io;
    bindIo(io, false);
    rows.push_back({"primal (serial C)", timeKernel(native, io, reps)});
  }
  {
    auto dr = driver::differentiate(*primal, spec.independents,
                                    spec.dependents,
                                    driver::AdjointMode::Serial, true);
    codegen::NativeKernel native(*dr.adjoint, serialOpts);
    exec::Inputs io;
    bindIo(io, true);
    rows.push_back({"adjoint serial (no guards)", timeKernel(native, io, reps)});
  }
  {
    auto dr = driver::differentiate(*primal, spec.independents,
                                    spec.dependents,
                                    driver::AdjointMode::FormAD, true);
    codegen::NativeKernel native(*dr.adjoint, serialOpts);
    exec::Inputs io;
    bindIo(io, true);
    rows.push_back({"adjoint FormAD (no guards)", timeKernel(native, io, reps)});
  }
  {
    auto dr = driver::differentiate(*primal, spec.independents,
                                    spec.dependents,
                                    driver::AdjointMode::Atomic, true);
    codegen::NativeKernel native(*dr.adjoint);  // with OpenMP atomics
    exec::Inputs io;
    bindIo(io, true);
    rows.push_back({"adjoint atomic (guarded)", timeKernel(native, io, reps)});
  }

  std::cout << "\n### Native generated-code wall clock (1 thread, " << n
            << " points per sweep)\n\n";
  driver::Table t({"version", "s / sweep", "ns / point", "vs FormAD"});
  double formadTime = rows[2].seconds;
  for (const auto& r : rows) {
    t.addRow({r.name, driver::fmt(r.seconds, 4),
              driver::fmt(r.seconds / static_cast<double>(n) * 1e9, 3),
              driver::fmt(r.seconds / formadTime, 2) + "x"});
  }
  std::cout << t.str()
            << "\nPaper reference at one thread: atomic adjoint 40.7 s vs "
               "plain 1.58 s (~26x).\nThe unguarded FormAD adjoint costs the "
               "same as the serial adjoint; the atomic\nversion pays for "
               "every increment even without any thread contention.\n\n";
  return 0;
}
