# Empty dependencies file for heat_adjoint.
# This may be replaced when dependencies are built.
