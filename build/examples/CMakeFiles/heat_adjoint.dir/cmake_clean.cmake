file(REMOVE_RECURSE
  "CMakeFiles/heat_adjoint.dir/heat_adjoint.cpp.o"
  "CMakeFiles/heat_adjoint.dir/heat_adjoint.cpp.o.d"
  "heat_adjoint"
  "heat_adjoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_adjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
