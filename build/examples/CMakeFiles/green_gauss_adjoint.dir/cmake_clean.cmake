file(REMOVE_RECURSE
  "CMakeFiles/green_gauss_adjoint.dir/green_gauss_adjoint.cpp.o"
  "CMakeFiles/green_gauss_adjoint.dir/green_gauss_adjoint.cpp.o.d"
  "green_gauss_adjoint"
  "green_gauss_adjoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_gauss_adjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
