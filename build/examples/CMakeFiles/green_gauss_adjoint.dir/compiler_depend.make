# Empty compiler generated dependencies file for green_gauss_adjoint.
# This may be replaced when dependencies are built.
