file(REMOVE_RECURSE
  "CMakeFiles/formad_cli.dir/formad_cli.cpp.o"
  "CMakeFiles/formad_cli.dir/formad_cli.cpp.o.d"
  "formad_cli"
  "formad_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formad_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
