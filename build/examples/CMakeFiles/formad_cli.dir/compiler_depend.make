# Empty compiler generated dependencies file for formad_cli.
# This may be replaced when dependencies are built.
