file(REMOVE_RECURSE
  "CMakeFiles/gfmc_walkers.dir/gfmc_walkers.cpp.o"
  "CMakeFiles/gfmc_walkers.dir/gfmc_walkers.cpp.o.d"
  "gfmc_walkers"
  "gfmc_walkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfmc_walkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
