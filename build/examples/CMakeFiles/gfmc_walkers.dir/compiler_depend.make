# Empty compiler generated dependencies file for gfmc_walkers.
# This may be replaced when dependencies are built.
