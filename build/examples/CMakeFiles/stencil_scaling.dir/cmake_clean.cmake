file(REMOVE_RECURSE
  "CMakeFiles/stencil_scaling.dir/stencil_scaling.cpp.o"
  "CMakeFiles/stencil_scaling.dir/stencil_scaling.cpp.o.d"
  "stencil_scaling"
  "stencil_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
