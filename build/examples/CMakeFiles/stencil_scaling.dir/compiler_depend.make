# Empty compiler generated dependencies file for stencil_scaling.
# This may be replaced when dependencies are built.
