file(REMOVE_RECURSE
  "CMakeFiles/lbm_analysis.dir/lbm_analysis.cpp.o"
  "CMakeFiles/lbm_analysis.dir/lbm_analysis.cpp.o.d"
  "lbm_analysis"
  "lbm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
