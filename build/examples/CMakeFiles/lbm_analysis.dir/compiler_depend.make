# Empty compiler generated dependencies file for lbm_analysis.
# This may be replaced when dependencies are built.
