file(REMOVE_RECURSE
  "CMakeFiles/test_cfg.dir/test_cfg.cpp.o"
  "CMakeFiles/test_cfg.dir/test_cfg.cpp.o.d"
  "test_cfg"
  "test_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
