# Empty compiler generated dependencies file for test_cfg.
# This may be replaced when dependencies are built.
