file(REMOVE_RECURSE
  "CMakeFiles/test_exec.dir/test_exec.cpp.o"
  "CMakeFiles/test_exec.dir/test_exec.cpp.o.d"
  "test_exec"
  "test_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
