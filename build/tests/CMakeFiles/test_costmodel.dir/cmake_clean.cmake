file(REMOVE_RECURSE
  "CMakeFiles/test_costmodel.dir/test_costmodel.cpp.o"
  "CMakeFiles/test_costmodel.dir/test_costmodel.cpp.o.d"
  "test_costmodel"
  "test_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
