# Empty dependencies file for test_property_ad.
# This may be replaced when dependencies are built.
