file(REMOVE_RECURSE
  "CMakeFiles/test_property_ad.dir/test_property_ad.cpp.o"
  "CMakeFiles/test_property_ad.dir/test_property_ad.cpp.o.d"
  "test_property_ad"
  "test_property_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
