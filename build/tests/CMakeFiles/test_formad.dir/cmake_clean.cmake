file(REMOVE_RECURSE
  "CMakeFiles/test_formad.dir/test_formad.cpp.o"
  "CMakeFiles/test_formad.dir/test_formad.cpp.o.d"
  "test_formad"
  "test_formad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
