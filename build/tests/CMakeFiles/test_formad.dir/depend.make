# Empty dependencies file for test_formad.
# This may be replaced when dependencies are built.
