file(REMOVE_RECURSE
  "CMakeFiles/test_codegen.dir/test_codegen.cpp.o"
  "CMakeFiles/test_codegen.dir/test_codegen.cpp.o.d"
  "test_codegen"
  "test_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
