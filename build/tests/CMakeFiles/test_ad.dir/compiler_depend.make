# Empty compiler generated dependencies file for test_ad.
# This may be replaced when dependencies are built.
