file(REMOVE_RECURSE
  "CMakeFiles/test_ad.dir/test_ad.cpp.o"
  "CMakeFiles/test_ad.dir/test_ad.cpp.o.d"
  "test_ad"
  "test_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
