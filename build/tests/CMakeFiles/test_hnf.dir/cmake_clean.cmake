file(REMOVE_RECURSE
  "CMakeFiles/test_hnf.dir/test_hnf.cpp.o"
  "CMakeFiles/test_hnf.dir/test_hnf.cpp.o.d"
  "test_hnf"
  "test_hnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
