# Empty compiler generated dependencies file for test_hnf.
# This may be replaced when dependencies are built.
