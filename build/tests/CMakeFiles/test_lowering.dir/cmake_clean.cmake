file(REMOVE_RECURSE
  "CMakeFiles/test_lowering.dir/test_lowering.cpp.o"
  "CMakeFiles/test_lowering.dir/test_lowering.cpp.o.d"
  "test_lowering"
  "test_lowering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
