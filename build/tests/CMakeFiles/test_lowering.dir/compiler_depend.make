# Empty compiler generated dependencies file for test_lowering.
# This may be replaced when dependencies are built.
