file(REMOVE_RECURSE
  "libformad_test_helpers.a"
)
