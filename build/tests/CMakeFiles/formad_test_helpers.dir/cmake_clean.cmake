file(REMOVE_RECURSE
  "CMakeFiles/formad_test_helpers.dir/helpers.cpp.o"
  "CMakeFiles/formad_test_helpers.dir/helpers.cpp.o.d"
  "libformad_test_helpers.a"
  "libformad_test_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formad_test_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
