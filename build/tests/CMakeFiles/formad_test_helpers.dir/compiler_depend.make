# Empty compiler generated dependencies file for formad_test_helpers.
# This may be replaced when dependencies are built.
