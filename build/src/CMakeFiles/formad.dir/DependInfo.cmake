
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ad/derivative.cpp" "src/CMakeFiles/formad.dir/ad/derivative.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ad/derivative.cpp.o.d"
  "/root/repo/src/ad/forward.cpp" "src/CMakeFiles/formad.dir/ad/forward.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ad/forward.cpp.o.d"
  "/root/repo/src/ad/reverse.cpp" "src/CMakeFiles/formad.dir/ad/reverse.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ad/reverse.cpp.o.d"
  "/root/repo/src/ad/tape.cpp" "src/CMakeFiles/formad.dir/ad/tape.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ad/tape.cpp.o.d"
  "/root/repo/src/analysis/accesses.cpp" "src/CMakeFiles/formad.dir/analysis/accesses.cpp.o" "gcc" "src/CMakeFiles/formad.dir/analysis/accesses.cpp.o.d"
  "/root/repo/src/analysis/activity.cpp" "src/CMakeFiles/formad.dir/analysis/activity.cpp.o" "gcc" "src/CMakeFiles/formad.dir/analysis/activity.cpp.o.d"
  "/root/repo/src/analysis/increment.cpp" "src/CMakeFiles/formad.dir/analysis/increment.cpp.o" "gcc" "src/CMakeFiles/formad.dir/analysis/increment.cpp.o.d"
  "/root/repo/src/analysis/instances.cpp" "src/CMakeFiles/formad.dir/analysis/instances.cpp.o" "gcc" "src/CMakeFiles/formad.dir/analysis/instances.cpp.o.d"
  "/root/repo/src/analysis/symbols.cpp" "src/CMakeFiles/formad.dir/analysis/symbols.cpp.o" "gcc" "src/CMakeFiles/formad.dir/analysis/symbols.cpp.o.d"
  "/root/repo/src/cfg/cfg.cpp" "src/CMakeFiles/formad.dir/cfg/cfg.cpp.o" "gcc" "src/CMakeFiles/formad.dir/cfg/cfg.cpp.o.d"
  "/root/repo/src/cfg/context.cpp" "src/CMakeFiles/formad.dir/cfg/context.cpp.o" "gcc" "src/CMakeFiles/formad.dir/cfg/context.cpp.o.d"
  "/root/repo/src/cfg/dominators.cpp" "src/CMakeFiles/formad.dir/cfg/dominators.cpp.o" "gcc" "src/CMakeFiles/formad.dir/cfg/dominators.cpp.o.d"
  "/root/repo/src/codegen/cgen.cpp" "src/CMakeFiles/formad.dir/codegen/cgen.cpp.o" "gcc" "src/CMakeFiles/formad.dir/codegen/cgen.cpp.o.d"
  "/root/repo/src/codegen/native.cpp" "src/CMakeFiles/formad.dir/codegen/native.cpp.o" "gcc" "src/CMakeFiles/formad.dir/codegen/native.cpp.o.d"
  "/root/repo/src/driver/driver.cpp" "src/CMakeFiles/formad.dir/driver/driver.cpp.o" "gcc" "src/CMakeFiles/formad.dir/driver/driver.cpp.o.d"
  "/root/repo/src/driver/report.cpp" "src/CMakeFiles/formad.dir/driver/report.cpp.o" "gcc" "src/CMakeFiles/formad.dir/driver/report.cpp.o.d"
  "/root/repo/src/exec/checkpoint.cpp" "src/CMakeFiles/formad.dir/exec/checkpoint.cpp.o" "gcc" "src/CMakeFiles/formad.dir/exec/checkpoint.cpp.o.d"
  "/root/repo/src/exec/costmodel.cpp" "src/CMakeFiles/formad.dir/exec/costmodel.cpp.o" "gcc" "src/CMakeFiles/formad.dir/exec/costmodel.cpp.o.d"
  "/root/repo/src/exec/interp.cpp" "src/CMakeFiles/formad.dir/exec/interp.cpp.o" "gcc" "src/CMakeFiles/formad.dir/exec/interp.cpp.o.d"
  "/root/repo/src/exec/simulate.cpp" "src/CMakeFiles/formad.dir/exec/simulate.cpp.o" "gcc" "src/CMakeFiles/formad.dir/exec/simulate.cpp.o.d"
  "/root/repo/src/exec/value.cpp" "src/CMakeFiles/formad.dir/exec/value.cpp.o" "gcc" "src/CMakeFiles/formad.dir/exec/value.cpp.o.d"
  "/root/repo/src/formad/exploit.cpp" "src/CMakeFiles/formad.dir/formad/exploit.cpp.o" "gcc" "src/CMakeFiles/formad.dir/formad/exploit.cpp.o.d"
  "/root/repo/src/formad/formad.cpp" "src/CMakeFiles/formad.dir/formad/formad.cpp.o" "gcc" "src/CMakeFiles/formad.dir/formad/formad.cpp.o.d"
  "/root/repo/src/formad/knowledge.cpp" "src/CMakeFiles/formad.dir/formad/knowledge.cpp.o" "gcc" "src/CMakeFiles/formad.dir/formad/knowledge.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/formad.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/formad.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/kernel.cpp" "src/CMakeFiles/formad.dir/ir/kernel.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ir/kernel.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/formad.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/CMakeFiles/formad.dir/ir/stmt.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ir/stmt.cpp.o.d"
  "/root/repo/src/ir/traversal.cpp" "src/CMakeFiles/formad.dir/ir/traversal.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ir/traversal.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/CMakeFiles/formad.dir/ir/type.cpp.o" "gcc" "src/CMakeFiles/formad.dir/ir/type.cpp.o.d"
  "/root/repo/src/kernels/data.cpp" "src/CMakeFiles/formad.dir/kernels/data.cpp.o" "gcc" "src/CMakeFiles/formad.dir/kernels/data.cpp.o.d"
  "/root/repo/src/kernels/gfmc.cpp" "src/CMakeFiles/formad.dir/kernels/gfmc.cpp.o" "gcc" "src/CMakeFiles/formad.dir/kernels/gfmc.cpp.o.d"
  "/root/repo/src/kernels/greengauss.cpp" "src/CMakeFiles/formad.dir/kernels/greengauss.cpp.o" "gcc" "src/CMakeFiles/formad.dir/kernels/greengauss.cpp.o.d"
  "/root/repo/src/kernels/indirect.cpp" "src/CMakeFiles/formad.dir/kernels/indirect.cpp.o" "gcc" "src/CMakeFiles/formad.dir/kernels/indirect.cpp.o.d"
  "/root/repo/src/kernels/lbm.cpp" "src/CMakeFiles/formad.dir/kernels/lbm.cpp.o" "gcc" "src/CMakeFiles/formad.dir/kernels/lbm.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "src/CMakeFiles/formad.dir/kernels/stencil.cpp.o" "gcc" "src/CMakeFiles/formad.dir/kernels/stencil.cpp.o.d"
  "/root/repo/src/parser/lexer.cpp" "src/CMakeFiles/formad.dir/parser/lexer.cpp.o" "gcc" "src/CMakeFiles/formad.dir/parser/lexer.cpp.o.d"
  "/root/repo/src/parser/parser.cpp" "src/CMakeFiles/formad.dir/parser/parser.cpp.o" "gcc" "src/CMakeFiles/formad.dir/parser/parser.cpp.o.d"
  "/root/repo/src/smt/congruence.cpp" "src/CMakeFiles/formad.dir/smt/congruence.cpp.o" "gcc" "src/CMakeFiles/formad.dir/smt/congruence.cpp.o.d"
  "/root/repo/src/smt/hnf.cpp" "src/CMakeFiles/formad.dir/smt/hnf.cpp.o" "gcc" "src/CMakeFiles/formad.dir/smt/hnf.cpp.o.d"
  "/root/repo/src/smt/lia.cpp" "src/CMakeFiles/formad.dir/smt/lia.cpp.o" "gcc" "src/CMakeFiles/formad.dir/smt/lia.cpp.o.d"
  "/root/repo/src/smt/linear.cpp" "src/CMakeFiles/formad.dir/smt/linear.cpp.o" "gcc" "src/CMakeFiles/formad.dir/smt/linear.cpp.o.d"
  "/root/repo/src/smt/rational.cpp" "src/CMakeFiles/formad.dir/smt/rational.cpp.o" "gcc" "src/CMakeFiles/formad.dir/smt/rational.cpp.o.d"
  "/root/repo/src/smt/solver.cpp" "src/CMakeFiles/formad.dir/smt/solver.cpp.o" "gcc" "src/CMakeFiles/formad.dir/smt/solver.cpp.o.d"
  "/root/repo/src/smt/term.cpp" "src/CMakeFiles/formad.dir/smt/term.cpp.o" "gcc" "src/CMakeFiles/formad.dir/smt/term.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/formad.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/formad.dir/support/diagnostics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
