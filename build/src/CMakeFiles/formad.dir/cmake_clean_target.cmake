file(REMOVE_RECURSE
  "libformad.a"
)
