# Empty compiler generated dependencies file for formad.
# This may be replaced when dependencies are built.
