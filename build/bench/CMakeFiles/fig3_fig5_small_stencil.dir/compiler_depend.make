# Empty compiler generated dependencies file for fig3_fig5_small_stencil.
# This may be replaced when dependencies are built.
