file(REMOVE_RECURSE
  "CMakeFiles/fig3_fig5_small_stencil.dir/fig3_fig5_small_stencil.cpp.o"
  "CMakeFiles/fig3_fig5_small_stencil.dir/fig3_fig5_small_stencil.cpp.o.d"
  "fig3_fig5_small_stencil"
  "fig3_fig5_small_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fig5_small_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
