# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_fig5_small_stencil.
