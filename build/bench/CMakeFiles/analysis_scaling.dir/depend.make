# Empty dependencies file for analysis_scaling.
# This may be replaced when dependencies are built.
