file(REMOVE_RECURSE
  "CMakeFiles/analysis_scaling.dir/analysis_scaling.cpp.o"
  "CMakeFiles/analysis_scaling.dir/analysis_scaling.cpp.o.d"
  "analysis_scaling"
  "analysis_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
