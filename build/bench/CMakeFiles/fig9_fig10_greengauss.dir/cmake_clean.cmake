file(REMOVE_RECURSE
  "CMakeFiles/fig9_fig10_greengauss.dir/fig9_fig10_greengauss.cpp.o"
  "CMakeFiles/fig9_fig10_greengauss.dir/fig9_fig10_greengauss.cpp.o.d"
  "fig9_fig10_greengauss"
  "fig9_fig10_greengauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fig10_greengauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
