# Empty compiler generated dependencies file for fig9_fig10_greengauss.
# This may be replaced when dependencies are built.
