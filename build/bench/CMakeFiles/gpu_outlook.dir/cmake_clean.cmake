file(REMOVE_RECURSE
  "CMakeFiles/gpu_outlook.dir/gpu_outlook.cpp.o"
  "CMakeFiles/gpu_outlook.dir/gpu_outlook.cpp.o.d"
  "gpu_outlook"
  "gpu_outlook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_outlook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
