# Empty compiler generated dependencies file for gpu_outlook.
# This may be replaced when dependencies are built.
