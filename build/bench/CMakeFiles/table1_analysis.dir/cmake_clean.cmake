file(REMOVE_RECURSE
  "CMakeFiles/table1_analysis.dir/table1_analysis.cpp.o"
  "CMakeFiles/table1_analysis.dir/table1_analysis.cpp.o.d"
  "table1_analysis"
  "table1_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
