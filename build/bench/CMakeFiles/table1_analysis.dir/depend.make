# Empty dependencies file for table1_analysis.
# This may be replaced when dependencies are built.
