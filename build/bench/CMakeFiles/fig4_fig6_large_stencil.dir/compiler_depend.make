# Empty compiler generated dependencies file for fig4_fig6_large_stencil.
# This may be replaced when dependencies are built.
