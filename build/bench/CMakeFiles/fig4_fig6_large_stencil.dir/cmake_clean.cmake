file(REMOVE_RECURSE
  "CMakeFiles/fig4_fig6_large_stencil.dir/fig4_fig6_large_stencil.cpp.o"
  "CMakeFiles/fig4_fig6_large_stencil.dir/fig4_fig6_large_stencil.cpp.o.d"
  "fig4_fig6_large_stencil"
  "fig4_fig6_large_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fig6_large_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
