file(REMOVE_RECURSE
  "CMakeFiles/native_stencil.dir/native_stencil.cpp.o"
  "CMakeFiles/native_stencil.dir/native_stencil.cpp.o.d"
  "native_stencil"
  "native_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
