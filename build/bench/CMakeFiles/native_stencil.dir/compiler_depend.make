# Empty compiler generated dependencies file for native_stencil.
# This may be replaced when dependencies are built.
