file(REMOVE_RECURSE
  "../lib/libformad_bench_common.a"
)
