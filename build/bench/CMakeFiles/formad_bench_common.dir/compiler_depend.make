# Empty compiler generated dependencies file for formad_bench_common.
# This may be replaced when dependencies are built.
