file(REMOVE_RECURSE
  "../lib/libformad_bench_common.a"
  "../lib/libformad_bench_common.pdb"
  "CMakeFiles/formad_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/formad_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formad_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
