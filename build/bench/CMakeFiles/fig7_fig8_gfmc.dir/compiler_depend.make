# Empty compiler generated dependencies file for fig7_fig8_gfmc.
# This may be replaced when dependencies are built.
