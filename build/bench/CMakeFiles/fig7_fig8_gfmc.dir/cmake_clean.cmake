file(REMOVE_RECURSE
  "CMakeFiles/fig7_fig8_gfmc.dir/fig7_fig8_gfmc.cpp.o"
  "CMakeFiles/fig7_fig8_gfmc.dir/fig7_fig8_gfmc.cpp.o.d"
  "fig7_fig8_gfmc"
  "fig7_fig8_gfmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fig8_gfmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
