file(REMOVE_RECURSE
  "CMakeFiles/micro_costmodel.dir/micro_costmodel.cpp.o"
  "CMakeFiles/micro_costmodel.dir/micro_costmodel.cpp.o.d"
  "micro_costmodel"
  "micro_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
