# Empty dependencies file for micro_costmodel.
# This may be replaced when dependencies are built.
